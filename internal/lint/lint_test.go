package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// moduleRoot locates the repository root (the directory with go.mod) so
// fixture loads type-check against the real module context.
func moduleRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// wantMarkers scans a fixture file for trailing "// want <analyzer>"
// comments and returns the expected (line, analyzer) findings.
func wantMarkers(t *testing.T, path string) map[string]int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want := map[string]int{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		idx := strings.Index(text, "// want ")
		if idx < 0 {
			continue
		}
		for _, name := range strings.Fields(text[idx+len("// want "):]) {
			want[fmt.Sprintf("%d:%s", line, name)]++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

// runFixture drives one analyzer over its fixture package and checks
// the diagnostics match the // want markers exactly — so every positive
// case must fire and every suppressed or negative case must stay quiet.
func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", a.Name)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	ix := NewModuleIndex(l.Fset, l.Loaded())
	got := map[string]int{}
	for _, d := range RunPackage(pkg, []*Analyzer{a}, ix) {
		got[fmt.Sprintf("%d:%s", d.Line, d.Analyzer)]++
	}
	want := map[string]int{}
	for _, f := range pkg.Files {
		path := pkg.Fset.Position(f.Package).Filename
		for k, v := range wantMarkers(t, path) {
			want[k] += v
		}
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s: want %d finding(s) at %s, got %d", a.Name, n, k, got[k])
		}
	}
	for k, n := range got {
		if want[k] == 0 {
			t.Errorf("%s: unexpected finding at line:analyzer %s (%d)", a.Name, k, n)
		}
	}
}

func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range Analyzers {
		t.Run(a.Name, func(t *testing.T) { runFixture(t, a) })
	}
}

func TestAnalyzersFor(t *testing.T) {
	names := func(as []*Analyzer) string {
		var ns []string
		for _, a := range as {
			ns = append(ns, a.Name)
		}
		sort.Strings(ns)
		return strings.Join(ns, ",")
	}
	cases := []struct {
		rel, pkgName string
		want         string
	}{
		// Numeric core: everything except ctxflow applies.
		{"internal/vecmath", "vecmath", "atomicwrite,determinism,errdrop,floateq,gofan,leaksurface,maporder,obsonly,poolescape"},
		{"internal/attack", "attack", "atomicwrite,determinism,errdrop,floateq,gofan,leaksurface,maporder,obsonly,poolescape"},
		{"internal/experiments", "experiments", "atomicwrite,determinism,errdrop,floateq,gofan,leaksurface,maporder,obsonly,poolescape"},
		// Request path: ctxflow joins; no determinism/maporder/gofan.
		{"internal/serve", "serve", "atomicwrite,ctxflow,errdrop,floateq,leaksurface,obsonly,poolescape"},
		{"internal/serve/engine", "engine", "atomicwrite,ctxflow,errdrop,floateq,leaksurface,obsonly,poolescape"},
		{"internal/serve/client", "client", "atomicwrite,ctxflow,errdrop,floateq,leaksurface,obsonly,poolescape"},
		{"internal/gateway", "gateway", "atomicwrite,ctxflow,errdrop,floateq,leaksurface,obsonly,poolescape"},
		{"internal/loadgen", "loadgen", "atomicwrite,ctxflow,errdrop,floateq,leaksurface,obsonly,poolescape"},
		// Library outside both the core and the request path.
		{"internal/rng", "rng", "atomicwrite,errdrop,floateq,leaksurface,obsonly,poolescape"},
		{"", "prid", "atomicwrite,errdrop,floateq,leaksurface,obsonly,poolescape"},
		// The store itself is the sanctioned home of raw writes.
		{"internal/store", "store", "errdrop,floateq,leaksurface,obsonly,poolescape"},
		// Commands: may print, still cannot drop errors, compare floats
		// raw, write persistent files non-atomically, or leak model rows.
		{"cmd/prid", "main", "atomicwrite,errdrop,floateq,leaksurface,poolescape"},
		{"examples/quickstart", "main", "atomicwrite,errdrop,floateq,leaksurface,poolescape"},
	}
	for _, c := range cases {
		if got := names(AnalyzersFor(c.rel, c.pkgName)); got != c.want {
			t.Errorf("AnalyzersFor(%q, %q) = %s, want %s", c.rel, c.pkgName, got, c.want)
		}
	}
}

func TestMalformedDirectiveIsReported(t *testing.T) {
	root := moduleRoot(t)
	dir := t.TempDir()
	src := `package fixture

import "os"

func f(path string) {
	os.Remove(path) //pridlint:allow errdrop
	os.Remove(path) //pridlint:allow nosuchanalyzer because
	os.Remove(path) //pridlint:forbid errdrop reason
}
`
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(pkg, []*Analyzer{AnalyzerErrDrop}, nil)
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	// All three directives are malformed, so none suppress: three errdrop
	// findings survive and three directive diagnostics are added.
	if byAnalyzer["errdrop"] != 3 {
		t.Errorf("errdrop findings = %d, want 3 (malformed directives must not suppress)\n%v", byAnalyzer["errdrop"], diags)
	}
	if byAnalyzer["directive"] != 3 {
		t.Errorf("directive diagnostics = %d, want 3\n%v", byAnalyzer["directive"], diags)
	}
}

func TestStackedDirectivesReachStatement(t *testing.T) {
	root := moduleRoot(t)
	dir := t.TempDir()
	src := `package fixture

import (
	"fmt"
	"os"
)

func f(path string) {
	//pridlint:allow errdrop best-effort cleanup in fixture
	//pridlint:allow obsonly fixture prints on purpose
	fmt.Println(os.Remove(path))
}

func g(a, b float64) bool {
	return a == b
}
`
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(pkg, []*Analyzer{AnalyzerObsOnly, AnalyzerFloatEq}, nil)
	// The fmt.Println is suppressed by the second stacked directive; the
	// float comparison in g is the only surviving finding.
	if len(diags) != 1 || diags[0].Analyzer != "floateq" {
		t.Errorf("diagnostics = %v, want exactly one floateq finding", diags)
	}
}

func TestPackageDirsSkipsTestdataAndDedups(t *testing.T) {
	root := moduleRoot(t)
	dirs, err := PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, d := range dirs {
		seen[d]++
		if strings.Contains(d, "testdata") {
			t.Errorf("PackageDirs returned testdata dir %s", d)
		}
	}
	for d, n := range seen {
		if n > 1 {
			t.Errorf("PackageDirs returned %s %d times", d, n)
		}
	}
	// The module root package interleaves files with subdirectories, the
	// historical dedup failure mode.
	if seen[root] != 1 {
		t.Errorf("module root listed %d times, want 1", seen[root])
	}
}

// Package lint implements pridlint, a project-specific static-analysis
// pass built only on the standard library's go/ast, go/parser, and
// go/types. It mechanically enforces the invariants PRID's reproduction
// guarantees rest on — seeded determinism, bit-identical parallel
// kernels, epsilon-safe float comparisons, obs-only logging, and
// checked errors — instead of relying on tests happening to cover the
// offending path.
//
// Each analyzer reports file:line:column diagnostics. A finding is
// suppressed by a written-reason directive on the same line or the
// directly preceding line:
//
//	//pridlint:allow <analyzer> <reason>
//
// The reason is mandatory: an allow without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at file:line:col.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer. Analyzers
// call Report for every violation; suppression directives are applied
// by the runner afterwards, so analyzers stay oblivious to them.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer string
	diags    *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// An Analyzer is one named invariant check. Syntactic analyzers set
// Run; analyzers needing the whole-module dataflow view (call graph +
// taint summaries) set RunModule instead and receive a ModulePass.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// ModulePass extends Pass with the package under analysis and the
// shared module index, for interprocedural analyzers.
type ModulePass struct {
	*Pass
	Target *Package
	Index  *ModuleIndex
}

// Analyzers is the full suite, in reporting order.
var Analyzers = []*Analyzer{
	AnalyzerDeterminism,
	AnalyzerFloatEq,
	AnalyzerMapOrder,
	AnalyzerGoFan,
	AnalyzerObsOnly,
	AnalyzerErrDrop,
	AnalyzerAtomicWrite,
	AnalyzerLeakSurface,
	AnalyzerPoolEscape,
	AnalyzerCtxFlow,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// corePackages are the numeric-core import path suffixes (relative to
// the module root) where determinism and bit-identity are load-bearing:
// seeded streams must come from internal/rng, and goroutine fan-out must
// go through the worker-gated vecmath kernels.
var corePackages = map[string]bool{
	"internal/vecmath":     true,
	"internal/hdc":         true,
	"internal/attack":      true,
	"internal/decode":      true,
	"internal/defense":     true,
	"internal/dataset":     true,
	"internal/quant":       true,
	"internal/experiments": true,
}

// isCore reports whether the package at relPath (module-relative,
// "" for the root package) is part of the numeric core.
func isCore(relPath string) bool { return corePackages[relPath] }

// AnalyzersFor returns the analyzers applicable to a package, given its
// module-relative path and package name. Gating lives here — in the
// runner, not the analyzers — so each analyzer can be driven directly
// over any fixture package in tests.
//
//   - determinism, maporder, gofan: numeric-core packages only.
//   - floateq, errdrop: every package (cmd and examples included —
//     dropped errors and raw float comparisons are bugs anywhere).
//   - obsonly: library packages only (package main prints to its user;
//     libraries must go through obs component loggers).
//   - atomicwrite: every package except internal/store itself — the
//     store is where the sanctioned temp-file/fsync/rename machinery
//     lives, so its own primitives are the one legitimate call site.
//   - leaksurface, poolescape: every package — model data and pooled
//     buffers move through the whole tree.
//   - ctxflow: request-path packages only (serve and its engine/client,
//     gateway, loadgen) — batch tools legitimately mint root contexts.
func AnalyzersFor(relPath, pkgName string) []*Analyzer {
	var out []*Analyzer
	core := isCore(relPath)
	library := pkgName != "main"
	for _, a := range Analyzers {
		switch a.Name {
		case "determinism", "maporder", "gofan":
			if core {
				out = append(out, a)
			}
		case "obsonly":
			if library {
				out = append(out, a)
			}
		case "atomicwrite":
			if relPath != "internal/store" {
				out = append(out, a)
			}
		case "ctxflow":
			if isRequestPath(relPath) {
				out = append(out, a)
			}
		default: // floateq, errdrop, leaksurface, poolescape
			out = append(out, a)
		}
	}
	return out
}

// requestPathPackages are the module-relative roots whose functions sit
// on the serving request path, where the context chain is load-bearing.
var requestPathPackages = []string{
	"internal/serve",
	"internal/gateway",
	"internal/loadgen",
}

func isRequestPath(relPath string) bool {
	for _, p := range requestPathPackages {
		if relPath == p || strings.HasPrefix(relPath, p+"/") {
			return true
		}
	}
	return false
}

// RunPackage runs the given analyzers over one loaded package and
// returns the surviving diagnostics: suppressed findings are dropped,
// and malformed or unparseable pridlint directives are reported under
// the reserved analyzer name "directive". ix carries the shared
// whole-module view for interprocedural analyzers; it may be nil when
// none of the analyzers declare RunModule.
func RunPackage(pkg *Package, analyzers []*Analyzer, ix *ModuleIndex) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			analyzer: a.Name,
			diags:    &raw,
		}
		switch {
		case a.Run != nil:
			a.Run(pass)
		case a.RunModule != nil && ix != nil:
			a.RunModule(&ModulePass{Pass: pass, Target: pkg, Index: ix})
		}
	}
	sup, bad := collectDirectives(pkg)
	var out []Diagnostic
	for _, d := range raw {
		if sup.allows(d) {
			continue
		}
		out = append(out, d)
	}
	out = append(out, bad...)
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// enclosingFuncName returns the name of the innermost function
// declaration containing pos, or "" when pos is at file scope. Methods
// report their bare name ("Equal"), not the receiver-qualified one.
func enclosingFuncName(file *ast.File, pos token.Pos) string {
	name := ""
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > pos || n.End() <= pos {
			return n.Pos() <= pos // prune subtrees that cannot contain pos
		}
		if fd, ok := n.(*ast.FuncDecl); ok {
			name = fd.Name.Name
		}
		return true
	})
	return name
}

// pkgFuncName resolves a called expression to its package-qualified
// function name (like "time.Now" or "os.Getenv") when the callee is a
// package-level function of an imported package, or "" otherwise.
func pkgFuncName(info *types.Info, fun ast.Expr) string {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := info.Uses[id].(*types.PkgName); !ok {
		return ""
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	// FullName is "path/to/pkg.Func"; shorten to "pkg.Func".
	full := obj.FullName()
	if i := strings.LastIndex(full, "/"); i >= 0 {
		full = full[i+1:]
	}
	return full
}

package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		name string
		text string
		want Directive
		ok   bool // is a pridlint directive at all
		err  bool // directive but malformed
	}{
		{"not a directive", "// plain comment", Directive{}, false, false},
		{"not a directive, mentions pridlint", "// run pridlint before pushing", Directive{}, false, false},
		{"block comments are not directives", "/* pridlint:allow errdrop x */", Directive{}, false, false},
		{"empty comment", "//", Directive{}, false, false},
		{"directive form", "//pridlint:allow errdrop best effort", Directive{"errdrop", "best effort"}, true, false},
		{"spaced form", "// pridlint:allow floateq exact zero guard", Directive{"floateq", "exact zero guard"}, true, false},
		{"extra interior spaces", "//pridlint:allow gofan   the kernel itself", Directive{"gofan", "the kernel itself"}, true, false},
		{"reason keeps interior words", "//pridlint:allow maporder sorted after the loop", Directive{"maporder", "sorted after the loop"}, true, false},
		{"missing reason", "//pridlint:allow errdrop", Directive{}, true, true},
		{"missing reason with space", "//pridlint:allow errdrop   ", Directive{}, true, true},
		{"missing analyzer", "//pridlint:allow", Directive{}, true, true},
		{"unknown analyzer", "//pridlint:allow nope reason here", Directive{}, true, true},
		{"unknown verb", "//pridlint:deny errdrop reason", Directive{}, true, true},
		{"bare pridlint prefix", "//pridlint:", Directive{}, true, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d, ok, err := ParseDirective(c.text)
			if ok != c.ok {
				t.Fatalf("ParseDirective(%q) ok = %v, want %v", c.text, ok, c.ok)
			}
			if (err != nil) != c.err {
				t.Fatalf("ParseDirective(%q) err = %v, want err=%v", c.text, err, c.err)
			}
			if err == nil && d != c.want {
				t.Errorf("ParseDirective(%q) = %+v, want %+v", c.text, d, c.want)
			}
		})
	}
}

// FuzzParseDirective checks the parser's structural invariants over
// arbitrary comment text: it never panics, never returns a directive
// with an unknown analyzer or empty reason, and only claims
// directive-hood for line comments addressed to pridlint.
func FuzzParseDirective(f *testing.F) {
	seeds := []string{
		"//pridlint:allow errdrop reason",
		"// pridlint:allow floateq why not",
		"//pridlint:allow",
		"//pridlint:",
		"//pridlint:allow determinism \t tabs and spaces ",
		"/*pridlint:allow gofan block*/",
		"//pridlint:allow errdrop\x00nul",
		"//pridlint:allow errdrop é世界",
		"not a comment",
		"//",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, ok, err := ParseDirective(text)
		if !ok {
			if err != nil {
				t.Fatalf("non-directive %q returned error %v", text, err)
			}
			if d != (Directive{}) {
				t.Fatalf("non-directive %q returned directive %+v", text, d)
			}
			return
		}
		if !strings.HasPrefix(text, "//") {
			t.Fatalf("claimed directive for non-line-comment %q", text)
		}
		if err != nil {
			return
		}
		if ByName(d.Analyzer) == nil {
			t.Fatalf("parsed unknown analyzer %q from %q", d.Analyzer, text)
		}
		if strings.TrimSpace(d.Reason) == "" {
			t.Fatalf("parsed empty reason from %q", text)
		}
		if utf8.ValidString(text) && !utf8.ValidString(d.Reason) {
			t.Fatalf("reason not valid UTF-8 for valid input %q", text)
		}
	})
}

// loadDirectivePkg writes src as a one-file package and returns its
// suppression index plus the filename diagnostics key on.
func loadDirectivePkg(t *testing.T, src string) (*suppressions, string) {
	t.Helper()
	root := moduleRoot(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "f.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sup, bad := collectDirectives(pkg)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %v", bad)
	}
	return sup, pkg.Fset.Position(pkg.Files[0].Package).Filename
}

// TestDirectiveCoversStructField pins the node-range rule for struct
// fields: a trailing directive covers its own field, and a standalone
// directive above a field covers that field's full extent — including
// later lines of a multi-line field — but nothing past it.
func TestDirectiveCoversStructField(t *testing.T) {
	src := `package fixture

type cfg struct {
	Threshold float64 //pridlint:allow floateq trailing form covers this field

	//pridlint:allow obsonly standalone form covers the whole multi-line field
	Compare func(
		a float64,
		b float64,
	) bool

	Plain int
}
`
	sup, file := loadDirectivePkg(t, src)
	if !sup.allowsAt(file, 4, "floateq") {
		t.Error("trailing directive does not cover its own struct field line")
	}
	for line := 7; line <= 10; line++ {
		if !sup.allowsAt(file, line, "obsonly") {
			t.Errorf("standalone directive does not cover line %d of the multi-line field", line)
		}
	}
	if sup.allowsAt(file, 12, "obsonly") {
		t.Error("directive bleeds past its field onto the next declaration")
	}
}

// TestDirectiveCoversMultilineStatement pins the rule for statements: a
// trailing directive on the first line of a multi-line call covers the
// whole statement (findings may be positioned at an argument on a later
// line), and so does a standalone directive above one.
func TestDirectiveCoversMultilineStatement(t *testing.T) {
	src := `package fixture

func sink(args ...any) {}

func f(a, b float64) {
	sink( //pridlint:allow floateq trailing form covers the whole call
		a == b,
	)
	//pridlint:allow maporder standalone form covers the whole call
	sink(
		a,
		b,
	)
	sink(a)
}
`
	sup, file := loadDirectivePkg(t, src)
	for line := 6; line <= 8; line++ {
		if !sup.allowsAt(file, line, "floateq") {
			t.Errorf("trailing directive does not cover line %d of its statement", line)
		}
	}
	for line := 10; line <= 13; line++ {
		if !sup.allowsAt(file, line, "maporder") {
			t.Errorf("standalone directive does not cover line %d of the next statement", line)
		}
	}
	if sup.allowsAt(file, 14, "floateq") || sup.allowsAt(file, 14, "maporder") {
		t.Error("directive bleeds past its statement")
	}
}

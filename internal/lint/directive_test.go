package lint

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		name string
		text string
		want Directive
		ok   bool // is a pridlint directive at all
		err  bool // directive but malformed
	}{
		{"not a directive", "// plain comment", Directive{}, false, false},
		{"not a directive, mentions pridlint", "// run pridlint before pushing", Directive{}, false, false},
		{"block comments are not directives", "/* pridlint:allow errdrop x */", Directive{}, false, false},
		{"empty comment", "//", Directive{}, false, false},
		{"directive form", "//pridlint:allow errdrop best effort", Directive{"errdrop", "best effort"}, true, false},
		{"spaced form", "// pridlint:allow floateq exact zero guard", Directive{"floateq", "exact zero guard"}, true, false},
		{"extra interior spaces", "//pridlint:allow gofan   the kernel itself", Directive{"gofan", "the kernel itself"}, true, false},
		{"reason keeps interior words", "//pridlint:allow maporder sorted after the loop", Directive{"maporder", "sorted after the loop"}, true, false},
		{"missing reason", "//pridlint:allow errdrop", Directive{}, true, true},
		{"missing reason with space", "//pridlint:allow errdrop   ", Directive{}, true, true},
		{"missing analyzer", "//pridlint:allow", Directive{}, true, true},
		{"unknown analyzer", "//pridlint:allow nope reason here", Directive{}, true, true},
		{"unknown verb", "//pridlint:deny errdrop reason", Directive{}, true, true},
		{"bare pridlint prefix", "//pridlint:", Directive{}, true, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d, ok, err := ParseDirective(c.text)
			if ok != c.ok {
				t.Fatalf("ParseDirective(%q) ok = %v, want %v", c.text, ok, c.ok)
			}
			if (err != nil) != c.err {
				t.Fatalf("ParseDirective(%q) err = %v, want err=%v", c.text, err, c.err)
			}
			if err == nil && d != c.want {
				t.Errorf("ParseDirective(%q) = %+v, want %+v", c.text, d, c.want)
			}
		})
	}
}

// FuzzParseDirective checks the parser's structural invariants over
// arbitrary comment text: it never panics, never returns a directive
// with an unknown analyzer or empty reason, and only claims
// directive-hood for line comments addressed to pridlint.
func FuzzParseDirective(f *testing.F) {
	seeds := []string{
		"//pridlint:allow errdrop reason",
		"// pridlint:allow floateq why not",
		"//pridlint:allow",
		"//pridlint:",
		"//pridlint:allow determinism \t tabs and spaces ",
		"/*pridlint:allow gofan block*/",
		"//pridlint:allow errdrop\x00nul",
		"//pridlint:allow errdrop é世界",
		"not a comment",
		"//",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, ok, err := ParseDirective(text)
		if !ok {
			if err != nil {
				t.Fatalf("non-directive %q returned error %v", text, err)
			}
			if d != (Directive{}) {
				t.Fatalf("non-directive %q returned directive %+v", text, d)
			}
			return
		}
		if !strings.HasPrefix(text, "//") {
			t.Fatalf("claimed directive for non-line-comment %q", text)
		}
		if err != nil {
			return
		}
		if ByName(d.Analyzer) == nil {
			t.Fatalf("parsed unknown analyzer %q from %q", d.Analyzer, text)
		}
		if strings.TrimSpace(d.Reason) == "" {
			t.Fatalf("parsed empty reason from %q", text)
		}
		if utf8.ValidString(text) && !utf8.ValidString(d.Reason) {
			t.Fatalf("reason not valid UTF-8 for valid input %q", text)
		}
	})
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerPoolEscape flags sync.Pool-backed buffers that outlive their
// Put: returned to the caller, stored into a field, global, or
// parameter-rooted structure, or captured by a goroutine — while the
// same function also Puts the buffer back. The classify and attack hot
// paths pool their scratch; an escaped alias means a later request
// silently overwrites an earlier result, which is exactly the class of
// corruption the bit-identity gates exist to catch. A function with a
// Get but no Put is ownership transfer and is not flagged.
//
// Derivation is intra-function and alias-based, not taint-based: a
// value is pool-derived only through field/index/slice access of a
// pooled object, composite literals embedding one, or append. Call
// results are never considered derived — helpers like vecmath.Clone
// exist precisely to copy data out of pooled storage.
var AnalyzerPoolEscape = &Analyzer{
	Name: "poolescape",
	Doc: "a sync.Pool Get-derived buffer escaping (returned, stored to a " +
		"field/global, or goroutine-captured) in a function that also Puts it back",
	Run: runPoolEscape,
}

func runPoolEscape(p *Pass) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPoolEscape(p, fn)
		}
	}
}

// poolState is the per-function escape analysis.
type poolState struct {
	pass    *Pass
	derived map[types.Object]bool
	hasPut  bool
}

func checkPoolEscape(p *Pass, fn *ast.FuncDecl) {
	st := &poolState{pass: p, derived: map[types.Object]bool{}}

	// Seed: objects assigned from pool.Get() (with or without the usual
	// type assertion), and detect whether the function Puts anything back.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if callee := staticCallee(p.Info, s); callee != nil && callee.FullName() == "(*sync.Pool).Put" {
				st.hasPut = true
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i < len(s.Lhs) && isPoolGetExpr(p.Info, rhs) {
					if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						st.derived[p.Info.ObjectOf(id)] = true
					}
				}
			}
		}
		return true
	})
	if len(st.derived) == 0 || !st.hasPut {
		return
	}

	// Propagate aliases to a fixed point: plain assignment, and storing
	// a derived value into a local container derives the container.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) || !st.derivedExpr(rhs) {
					continue
				}
				switch lhs := as.Lhs[i].(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						continue
					}
					obj := p.Info.ObjectOf(lhs)
					if obj != nil && !st.derived[obj] && isLocalVar(obj) {
						st.derived[obj] = true
						changed = true
					}
				default:
					root := lvalueRootObj(p.Info, lhs)
					if root != nil && !st.derived[root] && isLocalVar(root) && !isParamOf(fn, p.Info, root) {
						st.derived[root] = true
						changed = true
					}
				}
			}
			return true
		})
	}

	// Findings: returns, stores through non-local roots, goroutine capture.
	lits := funcLitRanges(fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			if insideLit(s.Pos(), lits) {
				return true
			}
			for _, r := range s.Results {
				if st.derivedExpr(r) {
					p.Report(s.Pos(), "sync.Pool buffer is returned after being Put back — the pooled array will be reused by a later caller; return a copy instead")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) || !st.derivedExpr(rhs) {
					continue
				}
				if _, isIdent := s.Lhs[i].(*ast.Ident); isIdent {
					continue
				}
				root := lvalueRootObj(p.Info, s.Lhs[i])
				if root == nil || !isLocalVar(root) || isParamOf(fn, p.Info, root) {
					p.Report(s.Pos(), "sync.Pool buffer is stored outside the function that Puts it back — the pooled array will be reused by a later caller; store a copy instead")
				}
			}
		case *ast.GoStmt:
			if st.goCaptures(s) {
				p.Report(s.Pos(), "sync.Pool buffer is captured by a goroutine that may outlive its Put — the pooled array will be reused concurrently; pass a copy or move the Put after the goroutine completes")
			}
		}
		return true
	})
}

// derivedExpr reports whether e aliases pooled memory. Values whose
// type cannot alias (scalars, strings, arrays — all copied on load) are
// never derived, so reading one float out of a pooled slice is fine.
func (st *poolState) derivedExpr(e ast.Expr) bool {
	if t := st.pass.Info.TypeOf(e); t != nil && !aliasCapable(t) {
		return false
	}
	switch x := e.(type) {
	case *ast.Ident:
		return st.derived[st.pass.Info.ObjectOf(x)]
	case *ast.ParenExpr:
		return st.derivedExpr(x.X)
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := st.pass.Info.Uses[id].(*types.PkgName); isPkg {
				return false
			}
		}
		return st.derivedExpr(x.X)
	case *ast.IndexExpr:
		return st.derivedExpr(x.X)
	case *ast.SliceExpr:
		return st.derivedExpr(x.X)
	case *ast.StarExpr:
		return st.derivedExpr(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			// Address-of aliases regardless of the operand's own
			// copy semantics (&s.arr aliases even though s.arr loads copy).
			return st.chainDerived(x.X)
		}
		return st.derivedExpr(x.X)
	case *ast.TypeAssertExpr:
		return st.derivedExpr(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if st.derivedExpr(v) {
				return true
			}
		}
	case *ast.CallExpr:
		// Only append-to-a-derived-slice keeps pooled backing memory:
		// appended elements are copied in, so append(nil, s.buf...) is
		// the sanctioned copy idiom and stays clean. Any other call
		// result is treated as fresh memory.
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
			return st.derivedExpr(x.Args[0])
		}
	}
	return false
}

// chainDerived walks a selector/index/deref chain to its base identifier
// purely syntactically — used for address-of, where aliasing is
// established by the operation itself rather than the value's type.
func (st *poolState) chainDerived(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return st.derived[st.pass.Info.ObjectOf(x)]
		default:
			return false
		}
	}
}

// aliasCapable reports whether assigning a value of type t can share
// memory with its source: true for pointers, slices, maps, channels,
// funcs, and interfaces, plus structs containing any of those. Basic
// values, strings, and arrays are copied on load.
func aliasCapable(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Array:
		return false
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if aliasCapable(u.Field(i).Type()) {
				return true
			}
		}
		return false
	}
	return true
}

// goCaptures reports whether the go statement smuggles a pooled buffer:
// a derived argument, or a function literal whose body references a
// derived object.
func (st *poolState) goCaptures(g *ast.GoStmt) bool {
	for _, a := range g.Call.Args {
		if st.derivedExpr(a) {
			return true
		}
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := st.pass.Info.Uses[id]; obj != nil && st.derived[obj] {
				captured = true
			}
		}
		return !captured
	})
	return captured
}

// isPoolGetExpr matches pool.Get() and the idiomatic
// pool.Get().(*scratchT) form.
func isPoolGetExpr(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	callee := staticCallee(info, call)
	return callee != nil && callee.FullName() == "(*sync.Pool).Get"
}

// isLocalVar reports whether obj is a function-scoped variable (not a
// package-level var, not a field).
func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		return false
	}
	scope := v.Parent()
	return scope != nil && scope != v.Pkg().Scope()
}

// isParamOf reports whether obj is a parameter or receiver of fn —
// storing pooled memory through one escapes to the caller.
func isParamOf(fn *ast.FuncDecl, info *types.Info, obj types.Object) bool {
	var fields []*ast.Field
	if fn.Recv != nil {
		fields = append(fields, fn.Recv.List...)
	}
	if fn.Type.Params != nil {
		fields = append(fields, fn.Type.Params.List...)
	}
	for _, f := range fields {
		for _, name := range f.Names {
			if info.ObjectOf(name) == obj {
				return true
			}
		}
	}
	return false
}

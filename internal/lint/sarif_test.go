package lint

import (
	"encoding/json"
	"testing"
)

func TestMarshalSARIF(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "leaksurface", File: "internal/serve/handlers.go", Line: 42, Col: 9, Message: "model-derived data reaches ..."},
		{Analyzer: "ctxflow", File: "internal/gateway/gateway.go", Line: 7, Col: 1, Message: "incoming context dropped"},
	}
	raw, err := MarshalSARIF(diags)
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip through a generic decode: the emitted document must be
	// valid JSON with the fields code-scanning ingestion keys on.
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("emitted SARIF does not parse: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("version %q, runs %d; want 2.1.0 and exactly one run", doc.Version, len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "pridlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Every registered analyzer must be present as a rule so a clean run
	// still advertises the rule set.
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, a := range Analyzers {
		if !ruleIDs[a.Name] {
			t.Errorf("analyzer %s missing from SARIF rules", a.Name)
		}
	}
	if !ruleIDs["directive"] {
		t.Error("reserved directive rule missing from SARIF rules")
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "leaksurface" || first.Level != "warning" {
		t.Errorf("first result ruleId/level = %s/%s", first.RuleID, first.Level)
	}
	if len(first.Locations) != 1 ||
		first.Locations[0].PhysicalLocation.ArtifactLocation.URI != "internal/serve/handlers.go" ||
		first.Locations[0].PhysicalLocation.Region.StartLine != 42 {
		t.Errorf("first result location mangled: %+v", first.Locations)
	}

	// An empty diagnostic set must still produce a valid document with
	// an empty (not null) results array — ingestion rejects null.
	raw, err = MarshalSARIF(nil)
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]any
	if err := json.Unmarshal(raw, &generic); err != nil {
		t.Fatal(err)
	}
	runs := generic["runs"].([]any)
	if results, ok := runs[0].(map[string]any)["results"].([]any); !ok || results == nil {
		t.Error("empty run must carry an empty results array, not null")
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Interprocedural taint engine for the leaksurface analyzer.
//
// The taint model (documented for users in DESIGN.md):
//
//   - Sources are the types that physically hold class hypervectors or
//     values derived from them at full resolution: hdc.Model and
//     hdc.BinaryModel (class-row storage), the prid facades over them,
//     attack.Reconstructor (holds the model it inverts), and the
//     engine.Served interface (the registry's handle to a model). Every
//     expression of one of these types — and everything data-flows from
//     it — carries the source bit.
//   - Sinks are the places data leaves the process: HTTP response
//     writers, encoding/* marshalling, the binary wire writer, and
//     slog/obs logging.
//   - Kills: classification outputs launder taint. Signed integers,
//     bools, and slices/arrays of them (predicted classes) are never
//     tainted, and neither are error values. Everything else — float
//     slices, packed uint64 rows, serialized []byte, strings, structs —
//     stays tainted.
//   - A sink only fires on structured values. A lone numeric scalar
//     (accuracy, leakage Δ, one cosine score) is an aggregate far below
//     the resolution model inversion needs, and the serving stack logs
//     such aggregates on purpose.
//
// Propagation is summary-based: for every module function we compute
// which parameters (receiver first) flow to which results and which
// parameters reach a sink, bottom-up over call-graph SCCs, so a taint
// entering writeJSON's v parameter is charged to writeJSON's callers.
// Calls out of the module are conservative: every result carries the
// union of every argument (and receiver) mask. Dynamic calls through
// function values likewise union their inputs. Taint through
// package-level variables is not tracked across functions.

// taintMask is a bitset over taint origins: bit 0 is "derived from a
// model source", bit i+1 is "derived from parameter i of the function
// under analysis" (receiver counts as parameter 0). Functions with more
// than 62 parameters lose tracking for the overflow — none exist here.
type taintMask uint64

const maskSource taintMask = 1

const maxTrackedParams = 62

func paramBit(i int) taintMask {
	if i < 0 || i >= maxTrackedParams {
		return 0
	}
	return 1 << (uint(i) + 1)
}

// taintSourceTypes lists the qualified type names whose values are
// leakage sources. Fixture packages import the real prid/internal/hdc,
// so the list needs no test-only entries.
var taintSourceTypes = map[string]bool{
	"prid/internal/hdc.Model":            true,
	"prid/internal/hdc.BinaryModel":      true,
	"prid.Model":                         true,
	"prid.BinaryModel":                   true,
	"prid/internal/attack.Reconstructor": true,
	"prid/internal/serve/engine.Served":  true,
}

// taintAllowedFuncs are the endpoints whose whole purpose is emitting
// model-derived data: the attacker/audit HTTP endpoints (serve and
// their gateway proxies) and the PRIDMDL1/PRIDBIN1 wire savers.
// Findings inside them are dropped and their parameters never count as
// sinks for callers — everything else needs a written //pridlint:allow.
var taintAllowedFuncs = map[string]bool{
	"(*prid/internal/serve.Server).handleReconstruct":     true,
	"(*prid/internal/serve.Server).handleAuditLeakage":    true,
	"(*prid/internal/gateway.Gateway).handleReconstruct":  true,
	"(*prid/internal/gateway.Gateway).handleAuditLeakage": true,
	"prid/internal/hdc.WriteModel":                        true,
	"prid/internal/hdc.WriteBinaryModel":                  true,
	"prid/internal/hdc.WritePackedBasis":                  true,
}

// isSourceType reports whether t (through pointers) is one of the
// model-holding source types.
func isSourceType(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return taintSourceTypes[obj.Pkg().Path()+"."+obj.Name()]
}

// killedType reports whether values of t can never carry model taint:
// classification outputs (signed ints, bools, and slices/arrays of
// them) and errors. Unsigned integers are deliberately not killed —
// packed class rows are []uint64.
func killedType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return killedBasic(u)
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok {
			return killedBasic(b)
		}
	case *types.Array:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok {
			return killedBasic(b)
		}
	case *types.Interface:
		return types.Identical(t, types.Universe.Lookup("error").Type())
	}
	return false
}

func killedBasic(b *types.Basic) bool {
	info := b.Info()
	if info&types.IsBoolean != 0 {
		return true
	}
	return info&types.IsInteger != 0 && info&types.IsUnsigned == 0
}

// sinkValueFires reports whether a tainted value of static type t is
// reportable at a sink. Bare numeric scalars do not fire: a single
// float is an aggregate (Δ, MSE, accuracy), not a reconstructable row.
func sinkValueFires(t types.Type) bool {
	if t == nil {
		return true
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return true
	}
	return b.Info()&types.IsNumeric == 0
}

// sinkHit describes one way data reaches the outside world: the sink
// category, the terminal call, and the module-local call chain that
// leads there (outermost callee first, capped for readability).
type sinkHit struct {
	cat  string // "http-response", "marshal", "wire", "log"
	sink string // terminal callee, e.g. "(*encoding/json.Encoder).Encode"
	via  []string
}

// leakFinding is one source→sink flow detected in a function.
type leakFinding struct {
	pos token.Pos
	hit sinkHit
}

// summary is the interprocedural contract of one module function:
// which parameters flow to which results, which parameters reach
// sinks, and the source→sink findings detected inside it.
type summary struct {
	fd        *funcDecl
	params    []*types.Var // receiver first
	retMask   []taintMask  // per result: which origins flow there
	paramSink []*sinkHit   // per param: how it reaches a sink, or nil
	findings  []leakFinding
	seen      map[token.Pos]bool
	allowed   bool
}

func newSummary(fd *funcDecl) *summary {
	sig := fd.obj.Type().(*types.Signature)
	var params []*types.Var
	if recv := sig.Recv(); recv != nil {
		params = append(params, recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		params = append(params, sig.Params().At(i))
	}
	return &summary{
		fd:        fd,
		params:    params,
		retMask:   make([]taintMask, sig.Results().Len()),
		paramSink: make([]*sinkHit, len(params)),
		seen:      map[token.Pos]bool{},
		allowed:   taintAllowedFuncs[fd.obj.FullName()],
	}
}

// computeSummaries runs the bottom-up summary computation: SCCs in
// reverse topological order, iterating recursive components to a fixed
// point.
func (ix *ModuleIndex) computeSummaries() {
	for obj, fd := range ix.funcs {
		ix.summaries[obj] = newSummary(fd)
	}
	for _, scc := range ix.sccOrder() {
		recursive := len(scc) > 1
		if !recursive {
			for _, c := range ix.callees(scc[0]) {
				if c == scc[0] {
					recursive = true
				}
			}
		}
		for pass := 0; pass < 16; pass++ {
			changed := false
			for _, fd := range scc {
				if ix.analyzeFunc(fd) {
					changed = true
				}
			}
			if !changed || !recursive {
				break
			}
		}
	}
}

// analyzeFunc runs the intra-function taint fixpoint for fd, merging
// into its summary. It reports whether the exported summary changed —
// the SCC driver's convergence signal.
func (ix *ModuleIndex) analyzeFunc(fd *funcDecl) bool {
	sum := ix.summaries[fd.obj]
	ev := &evaluator{ix: ix, fd: fd, sum: sum, obj: map[types.Object]taintMask{}}
	for i, p := range sum.params {
		ev.obj[p] = paramBit(i)
	}
	lits := funcLitRanges(fd.decl.Body)
	for iter := 0; iter < 32; iter++ {
		ev.changed = false
		ev.walkBody(fd.decl.Body, lits)
		if !ev.changed {
			break
		}
	}
	return ev.sumChanged
}

// posRange is a half-open position interval.
type posRange struct{ lo, hi token.Pos }

// funcLitRanges collects the source ranges of every function literal in
// body, so return statements inside closures are not attributed to the
// enclosing function's results.
func funcLitRanges(body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, posRange{lit.Pos(), lit.End()})
		}
		return true
	})
	return out
}

func insideLit(pos token.Pos, lits []posRange) bool {
	for _, r := range lits {
		if pos >= r.lo && pos < r.hi {
			return true
		}
	}
	return false
}

// evaluator runs the may-taint dataflow over one function body.
// Assignments only ever add taint (monotone), so iterating the
// syntactic walk to a fixed point handles loops and use-before-def.
type evaluator struct {
	ix  *ModuleIndex
	fd  *funcDecl
	sum *summary
	obj map[types.Object]taintMask

	changed    bool // objMask grew this iteration
	sumChanged bool // exported summary grew this analysis
}

func (ev *evaluator) info() *types.Info { return ev.fd.pkg.Info }

func (ev *evaluator) walkBody(body *ast.BlockStmt, lits []posRange) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			ev.assignStmt(s)
		case *ast.GenDecl:
			ev.genDecl(s)
		case *ast.RangeStmt:
			m := ev.mask(s.X)
			if s.Key != nil {
				ev.assignTo(s.Key, m)
			}
			if s.Value != nil {
				ev.assignTo(s.Value, m)
			}
		case *ast.SendStmt:
			ev.assignTo(s.Chan, ev.mask(s.Value))
		case *ast.ReturnStmt:
			if !insideLit(s.Pos(), lits) {
				ev.returnStmt(s)
			}
		case *ast.CallExpr:
			ev.callMasks(s) // every call is evaluated for sink effects
		}
		return true
	})
}

func (ev *evaluator) merge(obj types.Object, m taintMask) {
	if m == 0 || obj == nil {
		return
	}
	old := ev.obj[obj]
	if old|m != old {
		ev.obj[obj] = old | m
		ev.changed = true
	}
}

func (ev *evaluator) lookupObj(id *ast.Ident) types.Object {
	if obj := ev.info().Uses[id]; obj != nil {
		return obj
	}
	return ev.info().Defs[id]
}

// mask evaluates the taint of an expression, applying the type-based
// kill (classification outputs, errors) and the type-based source rule
// at every level.
func (ev *evaluator) mask(e ast.Expr) taintMask {
	if e == nil {
		return 0
	}
	m := ev.raw(e)
	if t := ev.info().TypeOf(e); t != nil {
		if killedType(t) {
			m = 0
		}
		if isSourceType(t) {
			m |= maskSource
		}
	}
	return m
}

func (ev *evaluator) raw(e ast.Expr) taintMask {
	switch x := e.(type) {
	case *ast.Ident:
		return ev.obj[ev.lookupObj(x)]
	case *ast.ParenExpr:
		return ev.mask(x.X)
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := ev.info().Uses[id].(*types.PkgName); isPkg {
				return 0 // qualified reference, not a data flow
			}
		}
		return ev.mask(x.X)
	case *ast.IndexExpr:
		return ev.mask(x.X)
	case *ast.IndexListExpr:
		return ev.mask(x.X)
	case *ast.SliceExpr:
		return ev.mask(x.X)
	case *ast.StarExpr:
		return ev.mask(x.X)
	case *ast.UnaryExpr:
		return ev.mask(x.X) // includes &v and <-ch
	case *ast.BinaryExpr:
		return ev.mask(x.X) | ev.mask(x.Y)
	case *ast.TypeAssertExpr:
		return ev.mask(x.X)
	case *ast.CompositeLit:
		var m taintMask
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= ev.mask(kv.Value)
			} else {
				m |= ev.mask(el)
			}
		}
		return m
	case *ast.CallExpr:
		var m taintMask
		for _, r := range ev.callMasks(x) {
			m |= r
		}
		return m
	case *ast.FuncLit:
		return ev.freeVarMask(x)
	}
	return 0
}

// freeVarMask is the taint a closure value carries: the union over
// every tainted object its body references.
func (ev *evaluator) freeVarMask(lit *ast.FuncLit) taintMask {
	var m taintMask
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := ev.info().Uses[id]
		if obj == nil {
			return true
		}
		m |= ev.obj[obj]
		if v, ok := obj.(*types.Var); ok && isSourceType(v.Type()) {
			m |= maskSource
		}
		return true
	})
	return m
}

func (ev *evaluator) assignStmt(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		var ms []taintMask
		switch r := ast.Unparen(s.Rhs[0]).(type) {
		case *ast.CallExpr:
			ms = ev.callMasks(r)
		case *ast.TypeAssertExpr: // v, ok := x.(T)
			ms = []taintMask{ev.mask(r.X), 0}
		case *ast.IndexExpr: // v, ok := m[k]
			ms = []taintMask{ev.mask(r.X), 0}
		case *ast.UnaryExpr: // v, ok := <-ch
			ms = []taintMask{ev.mask(r.X), 0}
		}
		for i, l := range s.Lhs {
			var m taintMask
			if i < len(ms) {
				m = ms[i]
			}
			ev.assignTo(l, m)
		}
		return
	}
	for i, l := range s.Lhs {
		if i < len(s.Rhs) {
			ev.assignTo(l, ev.mask(s.Rhs[i]))
		}
	}
}

func (ev *evaluator) genDecl(d *ast.GenDecl) {
	if d.Tok != token.VAR {
		return
	}
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == 1 && len(vs.Names) > 1 {
			if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
				ms := ev.callMasks(call)
				for i, name := range vs.Names {
					if i < len(ms) {
						ev.assignTo(name, ms[i])
					}
				}
				continue
			}
		}
		for i, name := range vs.Names {
			if i < len(vs.Values) {
				ev.assignTo(name, ev.mask(vs.Values[i]))
			}
		}
	}
}

// assignTo merges mask m into the object behind an lvalue. Writing
// through a selector, index, or dereference taints the container's
// root: storing a class row into out[i] makes out tainted.
func (ev *evaluator) assignTo(lhs ast.Expr, m taintMask) {
	if m == 0 {
		return
	}
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		ev.merge(ev.lookupObj(l), m)
	case *ast.ParenExpr:
		ev.assignTo(l.X, m)
	default:
		ev.merge(lvalueRootObj(ev.info(), lhs), m)
	}
}

// lvalueRootObj resolves the base object of a selector/index/deref
// chain ("s.buf[i]" → s), or nil when the base is not a simple object.
func lvalueRootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}

func (ev *evaluator) returnStmt(s *ast.ReturnStmt) {
	sig := ev.fd.obj.Type().(*types.Signature)
	nres := sig.Results().Len()
	if len(s.Results) == 0 {
		for i := 0; i < nres; i++ {
			if v := sig.Results().At(i); v.Name() != "" {
				ev.mergeRet(i, ev.obj[v], v.Type())
			}
		}
		return
	}
	if len(s.Results) == 1 && nres > 1 {
		if call, ok := ast.Unparen(s.Results[0]).(*ast.CallExpr); ok {
			ms := ev.callMasks(call)
			for i := 0; i < nres && i < len(ms); i++ {
				ev.mergeRet(i, ms[i], sig.Results().At(i).Type())
			}
			return
		}
	}
	for i, r := range s.Results {
		if i < nres {
			ev.mergeRet(i, ev.mask(r), sig.Results().At(i).Type())
		}
	}
}

func (ev *evaluator) mergeRet(i int, m taintMask, rt types.Type) {
	if m == 0 || killedType(rt) {
		return
	}
	old := ev.sum.retMask[i]
	if old|m != old {
		ev.sum.retMask[i] = old | m
		ev.sumChanged = true
		ev.changed = true
	}
}

// callArg pairs one call operand (receiver included, first) with its
// taint mask and the callee parameter index it feeds.
type callArg struct {
	expr  ast.Expr
	mask  taintMask
	param int
}

// callMasks evaluates a call: classifies sink effects (direct external
// sinks and sinks inherited through module callees' summaries) and
// returns the per-result taint masks.
func (ev *evaluator) callMasks(call *ast.CallExpr) []taintMask {
	info := ev.info()
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() { // conversion
		if len(call.Args) == 1 {
			return []taintMask{ev.mask(call.Args[0])}
		}
		return []taintMask{0}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsBuiltin() {
		return ev.builtinCall(call)
	}
	callee := staticCallee(info, call)
	if callee == nil { // dynamic call through a function value
		m := ev.mask(call.Fun)
		for _, a := range call.Args {
			m |= ev.mask(a)
		}
		return []taintMask{m}
	}

	sig, _ := callee.Type().(*types.Signature)
	var dargs []callArg
	base := 0
	if sig != nil && sig.Recv() != nil {
		base = 1
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				dargs = append(dargs, callArg{sel.X, ev.mask(sel.X), 0})
			}
		}
	}
	np := 0
	if sig != nil {
		np = sig.Params().Len()
	}
	for i, a := range call.Args {
		pi := i
		if sig != nil && sig.Variadic() && pi >= np-1 {
			pi = np - 1
		}
		if pi >= np {
			pi = np - 1
		}
		dargs = append(dargs, callArg{a, ev.mask(a), base + pi})
	}

	if csum, ok := ev.ix.summaries[callee]; ok {
		return ev.localCall(call, csum, dargs)
	}
	return ev.externalCall(call, callee, dargs, base)
}

func (ev *evaluator) localCall(call *ast.CallExpr, csum *summary, dargs []callArg) []taintMask {
	for _, a := range dargs {
		if a.mask == 0 || a.param < 0 || a.param >= len(csum.paramSink) {
			continue
		}
		hit := csum.paramSink[a.param]
		if hit == nil || !sinkValueFires(ev.info().TypeOf(a.expr)) {
			continue
		}
		ev.applySinkHit(call.Pos(), a.mask, sinkHit{
			cat:  hit.cat,
			sink: hit.sink,
			via:  prependVia(csum.fd.name(), hit.via),
		})
	}
	out := make([]taintMask, len(csum.retMask))
	for j, rm := range csum.retMask {
		var m taintMask
		if rm&maskSource != 0 {
			m |= maskSource
		}
		for pi := range csum.params {
			if rm&paramBit(pi) == 0 {
				continue
			}
			for _, a := range dargs {
				if a.param == pi {
					m |= a.mask
				}
			}
		}
		out[j] = m
	}
	return out
}

func (ev *evaluator) externalCall(call *ast.CallExpr, callee *types.Func, dargs []callArg, base int) []taintMask {
	if cat, sink, data := externalSink(ev.info(), call, callee, base, len(dargs)); cat != "" {
		for _, di := range data {
			a := dargs[di]
			if a.mask == 0 || !sinkValueFires(ev.info().TypeOf(a.expr)) {
				continue
			}
			ev.applySinkHit(call.Pos(), a.mask, sinkHit{cat: cat, sink: sink})
		}
	}
	// Conservative: every result of an unknown callee carries the union
	// of everything passed in (receiver included).
	var m taintMask
	for _, a := range dargs {
		m |= a.mask
	}
	n := 1
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Results().Len() > 0 {
		n = sig.Results().Len()
	}
	out := make([]taintMask, n)
	for j := range out {
		out[j] = m
	}
	return out
}

func (ev *evaluator) builtinCall(call *ast.CallExpr) []taintMask {
	name := ""
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	}
	switch name {
	case "append", "min", "max":
		var m taintMask
		for _, a := range call.Args {
			m |= ev.mask(a)
		}
		return []taintMask{m}
	case "copy":
		if len(call.Args) == 2 {
			ev.assignTo(call.Args[0], ev.mask(call.Args[1]))
		}
	}
	return []taintMask{0}
}

// applySinkHit routes a tainted value arriving at a sink: source taint
// becomes a finding here; parameter taint becomes part of this
// function's exported contract. Allowlisted endpoints export nothing.
func (ev *evaluator) applySinkHit(pos token.Pos, m taintMask, hit sinkHit) {
	if ev.sum.allowed {
		return
	}
	// A pridlint:allow on the sink line sanctions the emission itself, so
	// it suppresses both the local finding and the param-sink export —
	// one annotation at the root clears every caller charged through it.
	if p := ev.ix.Fset.Position(pos); ev.ix.allow.allowsAt(p.Filename, p.Line, AnalyzerLeakSurface.Name) {
		return
	}
	if m&maskSource != 0 && !ev.sum.seen[pos] {
		ev.sum.seen[pos] = true
		ev.sum.findings = append(ev.sum.findings, leakFinding{pos: pos, hit: hit})
		ev.sumChanged = true
		ev.changed = true
	}
	for i := range ev.sum.params {
		if m&paramBit(i) != 0 && ev.sum.paramSink[i] == nil {
			h := hit
			ev.sum.paramSink[i] = &h
			ev.sumChanged = true
			ev.changed = true
		}
	}
}

func prependVia(name string, via []string) []string {
	out := append([]string{name}, via...)
	if len(out) > 4 {
		out = out[:4]
	}
	return out
}

// externalSink classifies a call out of the module as a leakage sink.
// It returns the category, a rendered sink name, and the indices into
// the (receiver-first) operand list holding the data being emitted.
func externalSink(info *types.Info, call *ast.CallExpr, callee *types.Func, base, nargs int) (cat, sink string, data []int) {
	full := callee.FullName()
	argIdx := func(is ...int) []int {
		var out []int
		for _, i := range is {
			if base+i < nargs {
				out = append(out, base+i)
			}
		}
		return out
	}
	allArgs := func(from int) []int {
		var out []int
		for i := base + from; i < nargs; i++ {
			out = append(out, i)
		}
		return out
	}
	switch full {
	case "(net/http.ResponseWriter).Write":
		return "http-response", full, argIdx(0)
	case "net/http.Error":
		return "http-response", full, argIdx(1)
	case "(*encoding/json.Encoder).Encode":
		return "marshal", full, argIdx(0)
	case "encoding/json.Marshal", "encoding/json.MarshalIndent":
		return "marshal", full, argIdx(0)
	case "(*encoding/gob.Encoder).Encode":
		return "marshal", full, argIdx(0)
	case "encoding/binary.Write":
		return "wire", full, argIdx(2)
	}
	if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "log/slog" {
		return "log", full, allArgs(0)
	}
	// fmt.Fprint* straight into an HTTP response writer.
	if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "fmt" &&
		strings.HasPrefix(callee.Name(), "Fprint") && len(call.Args) > 0 {
		if isNamedType(info.TypeOf(call.Args[0]), "net/http", "ResponseWriter") {
			return "http-response", full, allArgs(1)
		}
	}
	return "", "", nil
}

func isNamedType(t types.Type, path, name string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}

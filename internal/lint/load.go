package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Package is one parsed and type-checked package ready for analysis.
// Test files (_test.go) are never loaded: every pridlint invariant is
// scoped to non-test code, and tests legitimately use raw goroutines,
// exact float comparisons, and fmt output.
type Package struct {
	Fset  *token.FileSet
	Dir   string
	Rel   string // module-relative path ("" for the module root)
	Name  string // package name ("main" for commands)
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports are resolved recursively
// from the module tree, and everything else goes through the go/types
// source importer (which compiles the dependency from GOROOT source).
type Loader struct {
	Fset      *token.FileSet
	ModuleDir string
	// ModulePath is the module's import path from go.mod; imports under
	// it are loaded from ModuleDir instead of the source importer.
	ModulePath string

	cache    map[string]*types.Package // by import path
	pkgCache map[string]*Package       // by absolute dir
	loading  map[string]bool           // import-cycle guard
}

// The source importer recompiles each stdlib dependency from GOROOT
// source, which dominates load time (net/http alone is seconds). One
// process-wide importer with its own FileSet shares that work across
// every Loader — pridlint's single run, and each fixture subtest's
// fresh Loader, all hit the same warmed cache. Stdlib object positions
// resolve against the shared FileSet, not a Loader's own, which is fine:
// diagnostics are only ever positioned at module files.
var (
	sharedStdMu   sync.Mutex
	sharedStdImp  types.ImporterFrom
	sharedStdOnce sync.Once
)

func sharedStd() types.ImporterFrom {
	sharedStdOnce.Do(func() {
		sharedStdImp = importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom)
	})
	return sharedStdImp
}

// importStd resolves a non-module import through the shared importer.
// The source importer is not safe for concurrent use, so calls are
// serialized process-wide.
func importStd(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	sharedStdMu.Lock()
	defer sharedStdMu.Unlock()
	return sharedStd().ImportFrom(path, srcDir, mode)
}

// NewLoader returns a Loader rooted at moduleDir. The module path is
// read from go.mod; moduleDir must contain one.
func NewLoader(moduleDir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:       token.NewFileSet(),
		ModuleDir:  moduleDir,
		ModulePath: modPath,
		cache:      map[string]*types.Package{},
		pkgCache:   map[string]*Package{},
		loading:    map[string]bool{},
	}
	return l, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Import implements types.Importer for the type checker: module-local
// packages load from the module tree, the rest from the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.LoadDir(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	pkg, err := importStd(path, srcDir, mode)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// Loaded returns every module-local package this loader has
// type-checked — the packages explicitly loaded plus every module
// dependency pulled in to satisfy their imports — sorted by directory.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgCache))
	for _, p := range l.pkgCache {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dir < out[j].Dir })
	return out
}

// LoadDir parses and type-checks the package in dir (non-test files
// only). Results are cached by import path, so shared internal
// dependencies are checked once.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgCache[abs]; ok {
		return pkg, nil
	}
	rel, importPath := l.relPath(abs)
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	files, names, err := l.parseDir(abs)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, typeErrs[0])
	}
	l.cache[importPath] = tpkg
	pkg := &Package{
		Fset:  l.Fset,
		Dir:   abs,
		Rel:   rel,
		Name:  names,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgCache[abs] = pkg
	return pkg, nil
}

// relPath maps an absolute package dir to its module-relative path and
// import path. Directories outside the module (fixtures under a temp
// dir, say) fall back to using the directory itself as the import path.
func (l *Loader) relPath(abs string) (rel, importPath string) {
	r, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(r, "..") {
		return abs, abs
	}
	if r == "." {
		return "", l.ModulePath
	}
	rel = filepath.ToSlash(r)
	return rel, l.ModulePath + "/" + rel
}

// parseDir parses every non-test .go file in dir with comments.
func (l *Loader) parseDir(dir string) ([]*ast.File, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		paths = append(paths, filepath.Join(dir, name))
	}
	sort.Strings(paths)
	var files []*ast.File
	pkgName := ""
	for _, p := range paths {
		f, err := parser.ParseFile(l.Fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, "", err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		files = append(files, f)
	}
	return files, pkgName, nil
}

// PackageDirs walks the module tree from root and returns every
// directory holding at least one non-test Go file, skipping testdata,
// vendor, hidden directories, and underscore-prefixed directories —
// the same pruning the go tool applies to ./... patterns.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	// WalkDir interleaves subdirectories between a directory's own files
	// (lexical order), so "last appended" dedup is not enough.
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			if dir := filepath.Dir(path); !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Timing breaks a Run into its phases: parsing+type-checking every
// package once, building the shared module index (call graph + taint
// summaries), and running the analyzers.
type Timing struct {
	Load     time.Duration `json:"load"`
	Index    time.Duration `json:"index"`
	Analyze  time.Duration `json:"analyze"`
	Packages int           `json:"packages"`
}

// Run loads every package under moduleDir matched by patterns (either
// explicit directories or the "./..." form) and runs the applicable
// analyzers over each, returning all surviving diagnostics with
// module-relative file paths.
func Run(moduleDir string, patterns []string, only []string) ([]Diagnostic, error) {
	diags, _, err := RunTimed(moduleDir, patterns, only)
	return diags, err
}

// RunTimed is Run with per-phase wall-clock timing. Every matched
// package is loaded up front through one shared Loader, one ModuleIndex
// is built over everything loaded (matched packages plus their module
// dependencies), and every analyzer then runs against that single view
// — packages and the index are never re-loaded per analyzer.
func RunTimed(moduleDir string, patterns []string, only []string) ([]Diagnostic, Timing, error) {
	var tm Timing
	l, err := NewLoader(moduleDir)
	if err != nil {
		return nil, tm, err
	}
	var dirs []string
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			ds, err := PackageDirs(moduleDir)
			if err != nil {
				return nil, tm, err
			}
			dirs = append(dirs, ds...)
		case strings.HasSuffix(pat, "/..."):
			ds, err := PackageDirs(filepath.Join(moduleDir, strings.TrimSuffix(pat, "/...")))
			if err != nil {
				return nil, tm, err
			}
			dirs = append(dirs, ds...)
		default:
			if !filepath.IsAbs(pat) {
				pat = filepath.Join(moduleDir, pat)
			}
			dirs = append(dirs, pat)
		}
	}

	start := time.Now()
	var pkgs []*Package
	seen := map[string]bool{}
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, tm, err
		}
		if !seen[pkg.Dir] {
			seen[pkg.Dir] = true
			pkgs = append(pkgs, pkg)
		}
	}
	tm.Load = time.Since(start)
	tm.Packages = len(pkgs)

	start = time.Now()
	ix := NewModuleIndex(l.Fset, l.Loaded())
	tm.Index = time.Since(start)

	start = time.Now()
	var all []Diagnostic
	for _, pkg := range pkgs {
		analyzers := AnalyzersFor(pkg.Rel, pkg.Name)
		if len(only) > 0 {
			analyzers = filterAnalyzers(analyzers, only)
		}
		diags := RunPackage(pkg, analyzers, ix)
		for i := range diags {
			if r, err := filepath.Rel(moduleDir, diags[i].File); err == nil && !strings.HasPrefix(r, "..") {
				diags[i].File = filepath.ToSlash(r)
			}
		}
		all = append(all, diags...)
	}
	sortDiagnostics(all)
	tm.Analyze = time.Since(start)
	return all, tm, nil
}

func filterAnalyzers(as []*Analyzer, only []string) []*Analyzer {
	keep := map[string]bool{}
	for _, n := range only {
		keep[n] = true
	}
	var out []*Analyzer
	for _, a := range as {
		if keep[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

package lint

import (
	"sort"
	"strings"
)

// AnalyzerLeakSurface machine-checks the repo's leakage-surface
// contract: class hypervectors (and full-resolution values derived from
// them) must not reach the outside world — HTTP responses, marshalled
// payloads, wire writers, logs — except through the explicitly
// allowlisted attacker/audit endpoints and model savers. This is the
// PRID threat model as a compile-time invariant: anything the analyzer
// flags is a value an attacker could run model inversion against.
var AnalyzerLeakSurface = &Analyzer{
	Name: "leaksurface",
	Doc: "model class rows or full-resolution derived data flowing to an " +
		"HTTP response, marshaller, wire writer, or log outside the " +
		"allowlisted reconstruct/audit endpoints and PRIDMDL1/PRIDBIN1 savers",
	RunModule: runLeakSurface,
}

func runLeakSurface(p *ModulePass) {
	for _, fd := range p.Index.funcsOf(p.Target) {
		sum := p.Index.summaries[fd.obj]
		if sum == nil {
			continue
		}
		findings := append([]leakFinding(nil), sum.findings...)
		sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
		for _, f := range findings {
			via := ""
			if len(f.hit.via) > 0 {
				via = " via " + strings.Join(f.hit.via, " → ")
			}
			p.Report(f.pos,
				"model-derived data reaches %s sink %s%s; only the reconstruct/audit endpoints and model savers may emit it (fix the flow or annotate //pridlint:allow leaksurface <reason>)",
				f.hit.cat, f.hit.sink, via)
		}
	}
}

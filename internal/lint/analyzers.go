package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"strconv"
	"strings"
)

// --- determinism -----------------------------------------------------------

// AnalyzerDeterminism forbids the three ambient-nondeterminism entry
// points in the numeric core: math/rand (streams differ across Go
// versions and are not splittable — internal/rng is the sanctioned
// generator), time.Now (wall-clock input to numeric paths breaks
// replayability — inject a clock), and os.Getenv (hidden configuration
// that makes two "identical" runs differ).
var AnalyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid math/rand, time.Now, and os.Getenv in the numeric core; use internal/rng and injected clocks",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Report(imp.Pos(), "import of %s in the numeric core; use prid/internal/rng for seeded, splittable, bit-stable streams", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch pkgFuncName(p.Info, sel) {
			case "time.Now":
				p.Report(sel.Pos(), "time.Now in the numeric core; inject a clock so runs replay bit-identically")
			case "os.Getenv", "os.LookupEnv":
				p.Report(sel.Pos(), "environment lookup in the numeric core; thread configuration through parameters")
			}
			return true
		})
	}
}

// --- floateq ---------------------------------------------------------------

// epsilonHelpers are functions whose whole job is comparing floats, so
// raw ==/!= inside their bodies is the implementation, not a bug.
var epsilonHelpers = map[string]bool{
	"ApproxEqual": true,
	"approxEqual": true,
	"AlmostEqual": true,
	"almostEqual": true,
	"EqualWithin": true,
	"equalWithin": true,
	"withinTol":   true,
}

// AnalyzerFloatEq flags ==/!= between floating-point operands. The PR 4
// clampedSim cancellation bug is the canonical failure: float noise
// around an exact comparison silently flips Equation-1 decisions.
// Comparisons inside approved epsilon helpers are exempt; deliberate
// exact guards (±0 sentinels, NaN self-comparison) carry an allow
// directive with the reason written down.
var AnalyzerFloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between floating-point operands outside approved epsilon helpers",
	Run:  runFloatEq,
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func runFloatEq(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := p.Info.TypeOf(be.X), p.Info.TypeOf(be.Y)
			if tx == nil || ty == nil || (!isFloat(tx) && !isFloat(ty)) {
				return true
			}
			if epsilonHelpers[enclosingFuncName(f, be.Pos())] {
				return true
			}
			p.Report(be.OpPos, "%s between floating-point operands; use an epsilon comparison (or annotate a deliberate exact guard)", be.Op)
			return true
		})
	}
}

// --- maporder --------------------------------------------------------------

// AnalyzerMapOrder flags range-over-map loops whose bodies accumulate
// floats or append into slices: Go randomizes map iteration order, so
// both produce run-to-run different results (float addition is not
// associative; slice order is observable). Deterministic alternatives:
// iterate sorted keys, or collect then sort.
var AnalyzerMapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag range-over-map feeding float accumulation or slice append in the numeric core",
	Run:  runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				switch s := m.(type) {
				case *ast.AssignStmt:
					switch s.Tok {
					case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
						if len(s.Lhs) == 1 && isFloat(orInvalid(p.Info.TypeOf(s.Lhs[0]))) {
							p.Report(s.TokPos, "float accumulation inside range over map; iteration order is randomized, so the sum is not bit-stable — iterate sorted keys")
						}
					default:
						for _, rhs := range s.Rhs {
							if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(p.Info, call) {
								p.Report(call.Pos(), "append inside range over map; element order follows randomized map order — iterate sorted keys or sort afterwards")
							}
						}
					}
				}
				return true
			})
			return true
		})
	}
}

// orInvalid lets TypeOf(nil-safe) feed isFloat without a nil check at
// every call site.
func orInvalid(t types.Type) types.Type {
	if t == nil {
		return types.Typ[types.Invalid]
	}
	return t
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// --- gofan -----------------------------------------------------------------

// AnalyzerGoFan flags raw `go` statements in the numeric core. Hot-path
// fan-out must ride vecmath.ParallelRows (or kernels built on it): the
// atomic-cursor row claim keeps per-row reduction order fixed — the
// property the bit-identity tests gate — and the flop gate keeps tiny
// inputs sequential. The sanctioned launch sites themselves carry allow
// directives explaining that they are the kernel.
var AnalyzerGoFan = &Analyzer{
	Name: "gofan",
	Doc:  "flag raw go-statement fan-out in the numeric core; use vecmath.ParallelRows",
	Run:  runGoFan,
}

func runGoFan(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Report(g.Pos(), "raw go statement in the numeric core; fan out through vecmath.ParallelRows so parallel results stay bit-identical to sequential")
			}
			return true
		})
	}
}

// --- obsonly ---------------------------------------------------------------

// AnalyzerObsOnly forbids fmt.Print*/log.* output in library packages.
// Libraries log through obs.Logger component loggers (leveled,
// machine-parseable, silenceable); writing straight to stdout/stderr
// bypasses the level gate and corrupts structured output. Commands
// (package main) print to their user freely.
var AnalyzerObsOnly = &Analyzer{
	Name: "obsonly",
	Doc:  "forbid fmt.Print*/log.* in library packages; use obs component loggers",
	Run:  runObsOnly,
}

func runObsOnly(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := pkgFuncName(p.Info, sel)
			switch {
			case name == "fmt.Print" || name == "fmt.Printf" || name == "fmt.Println":
				p.Report(sel.Pos(), "%s writes to stdout from a library package; use obs.Logger component loggers", name)
			case strings.HasPrefix(name, "log."):
				if obj, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "log" {
					p.Report(sel.Pos(), "%s uses the standard log package from a library package; use obs.Logger component loggers", name)
				}
			}
			return true
		})
	}
}

// --- errdrop ---------------------------------------------------------------

// AnalyzerErrDrop flags calls whose error result is silently discarded:
// a call used as a bare statement, or deferred, while returning an
// error. Best-effort discards either use an explicit `_ =` assignment
// (visible intent) or carry an allow directive with the reason.
// fmt.Print* to stdout and writes into strings.Builder/bytes.Buffer
// (documented never to fail) are exempt.
var AnalyzerErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flag call statements and defers that discard an error result",
	Run:  runErrDrop,
}

var errorType = types.Universe.Lookup("error").Type()

func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if types.Identical(rt.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errorType)
	}
}

// errDropExempt reports calls whose error is conventionally meaningless:
// fmt printing to stdout, and writes into in-memory buffers
// (strings.Builder and bytes.Buffer document that Write never returns a
// non-nil error) — whether as methods on the buffer or as the writer
// argument of fmt.Fprint*.
func errDropExempt(info *types.Info, call *ast.CallExpr) bool {
	switch name := pkgFuncName(info, call.Fun); name {
	case "fmt.Print", "fmt.Printf", "fmt.Println":
		return true
	case "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		// Fprint to the process streams is fmt.Print by another name.
		return isMemBuffer(info.TypeOf(call.Args[0])) || isStdStream(info, call.Args[0])
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isMemBuffer(info.TypeOf(sel.X))
}

func isMemBuffer(t types.Type) bool {
	if t == nil {
		return false
	}
	s := strings.TrimPrefix(t.String(), "*")
	return s == "strings.Builder" || s == "bytes.Buffer"
}

// isStdStream reports whether expr is the os.Stdout or os.Stderr
// package variable.
func isStdStream(info *types.Info, expr ast.Expr) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr")
}

func runErrDrop(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			kind := ""
			switch s := n.(type) {
			case *ast.ExprStmt:
				c, ok := s.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				call, kind = c, "discarded"
			case *ast.DeferStmt:
				call, kind = s.Call, "deferred and discarded"
			case *ast.GoStmt:
				call, kind = s.Call, "discarded by go statement"
			default:
				return true
			}
			if returnsError(p.Info, call) && !errDropExempt(p.Info, call) {
				p.Report(call.Pos(), "error result of %s is %s; handle it, assign to _ deliberately, or annotate why it cannot matter", callName(p.Info, call), kind)
			}
			return true
		})
	}
}

// callName renders a short human name for the called function.
func callName(info *types.Info, call *ast.CallExpr) string {
	if n := pkgFuncName(info, call.Fun); n != "" {
		return n
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}

// --- atomicwrite -----------------------------------------------------------

// AnalyzerAtomicWrite forbids raw os.Create/os.WriteFile (and os.OpenFile
// with a create/truncate mode) outside internal/store. A bare write has
// two crash windows the snapshot layer exists to close: a kill mid-write
// leaves a torn file under the final name, and an unfsynced write can
// roll back after power loss — for model files, silently reinstating an
// older, possibly less-defended generation. Persistent artifacts go
// through store.AtomicWrite/AtomicWriteFile; genuinely transient files
// (fixtures, deliberate corruption in smoke gates) carry an allow
// directive saying why.
var AnalyzerAtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "forbid raw os.Create/os.WriteFile outside internal/store; use store.AtomicWrite for persistent artifacts",
	Run:  runAtomicWrite,
}

func runAtomicWrite(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch name := pkgFuncName(p.Info, call.Fun); name {
			case "os.Create", "os.WriteFile":
				p.Report(call.Pos(), "%s writes non-atomically (torn file on crash, no fsync); use store.AtomicWrite/AtomicWriteFile or annotate why this file is transient", name)
			case "os.OpenFile":
				if openFileCreates(p.Info, call) {
					p.Report(call.Pos(), "os.OpenFile with O_CREATE/O_TRUNC writes non-atomically; use store.AtomicWrite or annotate why this file is transient")
				}
			}
			return true
		})
	}
}

// openFileCreates reports whether an os.OpenFile call's flag argument
// provably includes O_CREATE or O_TRUNC. Flags that cannot be evaluated
// at compile time are let through: the analyzer only flags what it can
// prove, and the errdrop-style fallback is review.
func openFileCreates(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	tv, ok := info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok {
		return false
	}
	return v&(int64(os.O_CREATE)|int64(os.O_TRUNC)) != 0
}

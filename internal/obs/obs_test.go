package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug":     slog.LevelDebug,
		"info":      slog.LevelInfo,
		"WARN":      slog.LevelWarn,
		" warning ": slog.LevelWarn,
		"error":     slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}

func TestLoggerComponentKeyAndLevel(t *testing.T) {
	var buf bytes.Buffer
	SetLogOutput(&buf)
	defer SetLogOutput(io.Discard)
	prev := Level()
	defer SetLevel(prev)

	SetLevel(slog.LevelInfo)
	l := Logger("hdc")
	l.Debug("hidden")
	l.Info("visible", "samples", 42)
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug line emitted at info level:\n%s", out)
	}
	if !strings.Contains(out, "component=hdc") || !strings.Contains(out, "samples=42") {
		t.Fatalf("missing component/attrs:\n%s", out)
	}

	buf.Reset()
	SetLevel(slog.LevelDebug)
	l.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Fatalf("debug line suppressed at debug level:\n%s", buf.String())
	}
}

func TestServeDebugEndpoints(t *testing.T) {
	d, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	GetCounter("http.test.counter").Add(3)

	resp, err := http.Get("http://" + d.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars: status %d err %v", resp.StatusCode, err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["prid_metrics"]; !ok {
		t.Fatalf("prid_metrics missing from /debug/vars (keys: %d)", len(vars))
	}
	var snap Snapshot
	if err := json.Unmarshal(vars["prid_metrics"], &snap); err != nil {
		t.Fatalf("prid_metrics is not a Snapshot: %v", err)
	}
	if snap.Counters["http.test.counter"] < 3 {
		t.Fatalf("counter missing from published snapshot: %+v", snap.Counters)
	}

	resp, err = http.Get("http://" + d.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/: status %d", resp.StatusCode)
	}
}

// Package obs is the observability substrate of the PRID reproduction:
// a concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) published through expvar, span-style phase tracing for the
// pipeline stages (encode / train / retrain / decode / attack / defend /
// experiment), a shared log/slog logger with per-component keys, and a
// debug HTTP server exposing /debug/vars and net/http/pprof.
//
// The package is stdlib-only and dependency-free within the module, so
// every layer (internal/hdc, internal/attack, internal/decode,
// internal/defense, internal/experiments, the facade, and cmd/prid) can
// import it without cycles.
//
// Hot-path discipline: instrument at batch granularity. Callers resolve
// metric handles once (package-level vars) and the increment operations
// are single atomic adds — no map lookups, no allocation, no locks on the
// hot path.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64. The zero value is ready to
// use, and all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is a programming error but is not checked on the
// hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can go up and down (worker counts, last-seen
// throughput). The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (cumulative style:
// bucket i counts observations ≤ Bounds[i]; one extra implicit +Inf
// bucket catches the rest). Sum and Count track the running total so
// callers can derive means and rates. All methods are safe for concurrent
// use and allocation-free.
type Histogram struct {
	bounds []float64 // sorted upper bounds; immutable after construction
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// newHistogram builds a histogram over the given sorted upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short (≤ ~16) and the branch predictor
	// beats binary search at that size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the idiom for
// timing a phase: defer'd or explicit h.ObserveSince(t0).
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running total of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (q clamped to [0, 1]) from the
// bucket counts by linear interpolation inside the bucket holding the
// rank, assuming observations are spread uniformly within a bucket and
// that observed values are non-negative (the first bucket interpolates
// up from zero — true for every duration and size histogram in this
// repo). A rank landing in the +Inf overflow bucket has no upper edge to
// interpolate toward, so the largest finite bound is returned as the
// best lower estimate. Empty histograms report 0.
//
// The counts are read with individual atomic loads while Observe may be
// running concurrently, so the estimate can mix in-flight updates — the
// same point-in-time looseness Snapshot accepts. It is an observability
// readout, never a numeric-core input.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) {
				// Overflow bucket: unbounded above.
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			return lower + (h.bounds[i]-lower)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// DurationBuckets covers 100µs … ~100s in roughly 3× steps — wide enough
// for both a single Encode batch and a paper-scale experiment sweep.
var DurationBuckets = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100,
}

// ExponentialBuckets returns n upper bounds starting at start and growing
// by factor — the shape for size-like distributions (batch sizes, payload
// rows) where DurationBuckets' absolute values make no sense.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic(fmt.Sprintf("obs: ExponentialBuckets(%v, %v, %d) out of domain", start, factor, n))
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// Registry is a named collection of metrics. Get-or-create accessors make
// registration implicit; handles should be resolved once and cached by
// the instrumented package.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (later calls may pass nil bounds;
// mismatched bounds on an existing histogram are ignored — the first
// registration wins).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	h = newHistogram(bounds)
	r.histograms[name] = h
	return h
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one (upper bound, count) pair; the +Inf bucket is
// serialized with UpperBound = null (JSON has no infinity).
type BucketCount struct {
	UpperBound *float64 `json:"le"`
	Count      int64    `json:"count"`
}

// Snapshot is a point-in-time copy of every metric in a registry; it
// marshals to stable JSON (sorted keys via map marshaling).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		for i := range h.counts {
			n := h.counts[i].Load()
			if n == 0 {
				continue
			}
			var le *float64
			if i < len(h.bounds) {
				le = &h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, BucketCount{UpperBound: le, Count: n})
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Default is the process-wide registry every instrumented package uses.
var Default = NewRegistry()

// GetCounter resolves a counter in the Default registry.
func GetCounter(name string) *Counter { return Default.Counter(name) }

// GetGauge resolves a gauge in the Default registry.
func GetGauge(name string) *Gauge { return Default.Gauge(name) }

// GetHistogram resolves a histogram in the Default registry (nil bounds
// select DurationBuckets).
func GetHistogram(name string, bounds []float64) *Histogram {
	return Default.Histogram(name, bounds)
}

var publishOnce sync.Once

// PublishExpvar exposes the Default registry's snapshot as the expvar
// variable "prid_metrics" (and thus on /debug/vars). Safe to call more
// than once; only the first call registers.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("prid_metrics", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}

// Rate returns n/seconds, guarding the divide (0 when seconds ≤ 0).
func Rate(n int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(n) / seconds
}

// FormatRate renders a rate with a unit for end-of-run summaries, e.g.
// "12345.6 samples/s".
func FormatRate(n int64, seconds float64, unit string) string {
	return fmt.Sprintf("%.1f %s/s", Rate(n, seconds), unit)
}

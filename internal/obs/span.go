package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed phase of a run: encode, train, retrain, decode,
// attack, defend, experiment, or any caller-defined stage. Spans nest —
// a span started while another is open on the same tracer becomes its
// child — and record wall time plus the two quantities every PRID phase
// is judged by: samples processed and workers used.
//
// AddSamples is safe to call from worker goroutines while the span is
// open; Start/End structure is managed by the owning goroutine (the
// pipeline phases are sequential, which is what makes a stack-shaped
// tracer sufficient).
type Span struct {
	tracer  *Tracer
	parent  *Span
	name    string
	start   time.Time
	samples atomic.Int64
	workers atomic.Int64

	mu       sync.Mutex
	duration time.Duration
	ended    bool
	children []*Span
}

// Name returns the phase name.
func (s *Span) Name() string { return s.name }

// AddSamples records n samples processed in this phase (atomic; callable
// from worker goroutines).
func (s *Span) AddSamples(n int) {
	if s == nil {
		return
	}
	s.samples.Add(int64(n))
}

// SetWorkers records the degree of parallelism used by the phase.
func (s *Span) SetWorkers(n int) {
	if s == nil {
		return
	}
	s.workers.Store(int64(n))
}

// End closes the span, fixing its duration. Ending twice is a no-op, so
// `defer span.End()` composes with early exits that already ended it.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.duration = time.Since(s.start)
	s.mu.Unlock()
	s.tracer.pop(s)
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// SpanSnapshot is the JSON form of one span (and, recursively, its
// subtree).
type SpanSnapshot struct {
	Name       string         `json:"name"`
	StartMS    float64        `json:"start_ms"` // offset from the trace epoch
	DurationMS float64        `json:"duration_ms"`
	Samples    int64          `json:"samples,omitempty"`
	Workers    int64          `json:"workers,omitempty"`
	SamplesPS  float64        `json:"samples_per_sec,omitempty"`
	Open       bool           `json:"open,omitempty"` // true if End had not been called
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// snapshot copies the span subtree relative to the trace epoch.
func (s *Span) snapshot(epoch time.Time) SpanSnapshot {
	s.mu.Lock()
	dur := s.duration
	open := !s.ended
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if open {
		dur = time.Since(s.start)
	}
	snap := SpanSnapshot{
		Name:       s.name,
		StartMS:    float64(s.start.Sub(epoch)) / float64(time.Millisecond),
		DurationMS: float64(dur) / float64(time.Millisecond),
		Samples:    s.samples.Load(),
		Workers:    s.workers.Load(),
		Open:       open,
	}
	if secs := dur.Seconds(); secs > 0 && snap.Samples > 0 {
		snap.SamplesPS = float64(snap.Samples) / secs
	}
	for _, c := range children {
		snap.Children = append(snap.Children, c.snapshot(epoch))
	}
	return snap
}

// maxTraceSpans bounds trace memory: paper-scale sweeps open thousands of
// encode/train spans; beyond the cap new spans are still timed and their
// metrics recorded, but they are not retained in the tree (a counter
// tracks the drops).
const maxTraceSpans = 8192

// Tracer owns a tree of spans. The zero Tracer is not usable; use
// NewTracer or the package-level Default tracer helpers.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	roots   []*Span
	stack   []*Span
	spans   int
	dropped int64
}

// NewTracer returns an empty tracer whose epoch is the first span's start.
func NewTracer() *Tracer { return &Tracer{} }

// StartSpan opens a span named name as a child of the innermost open span
// (or as a new root). It never returns nil; if the trace is over capacity
// the span is timed but not retained.
func (t *Tracer) StartSpan(name string) *Span {
	s := &Span{tracer: t, name: name, start: time.Now()}
	t.mu.Lock()
	if t.epoch.IsZero() {
		t.epoch = s.start
	}
	if t.spans >= maxTraceSpans {
		t.dropped++
		t.mu.Unlock()
		return s
	}
	t.spans++
	if n := len(t.stack); n > 0 {
		s.parent = t.stack[n-1]
	} else {
		t.roots = append(t.roots, s)
	}
	t.stack = append(t.stack, s)
	t.mu.Unlock()
	if s.parent != nil {
		s.parent.addChild(s)
	}
	return s
}

// pop removes s from the open-span stack. Out-of-order ends are
// tolerated: the span is removed from wherever it sits so later pushes
// keep nesting under the right parent.
func (t *Tracer) pop(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			return
		}
	}
}

// Snapshot copies the current span forest (open spans included, flagged
// Open with their running duration).
func (t *Tracer) Snapshot() []SpanSnapshot {
	t.mu.Lock()
	roots := append([]*Span(nil), t.roots...)
	epoch := t.epoch
	t.mu.Unlock()
	out := make([]SpanSnapshot, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.snapshot(epoch))
	}
	return out
}

// Dropped returns how many spans were discarded by the capacity cap.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all recorded spans (open spans keep functioning but are
// no longer referenced by the tracer).
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.epoch = time.Time{}
	t.roots = nil
	t.stack = nil
	t.spans = 0
	t.dropped = 0
	t.mu.Unlock()
}

// DefaultTracer is the process-wide tracer used by the instrumented
// pipeline phases.
var DefaultTracer = NewTracer()

// StartSpan opens a span on the DefaultTracer.
func StartSpan(name string) *Span { return DefaultTracer.StartSpan(name) }

// TraceSnapshot copies the DefaultTracer's span forest.
func TraceSnapshot() []SpanSnapshot { return DefaultTracer.Snapshot() }

// ResetTrace clears the DefaultTracer.
func ResetTrace() { DefaultTracer.Reset() }

// Trace is the combined artifact --trace-json dumps after a run: the span
// forest plus the metric snapshot taken at the same instant.
type Trace struct {
	Spans   []SpanSnapshot `json:"spans"`
	Dropped int64          `json:"dropped_spans,omitempty"`
	Metrics Snapshot       `json:"metrics"`
}

// WriteTrace dumps the DefaultTracer and Default registry as indented
// JSON.
func WriteTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Trace{
		Spans:   TraceSnapshot(),
		Dropped: DefaultTracer.Dropped(),
		Metrics: Default.Snapshot(),
	})
}

// Summary renders the span forest as an indented per-phase listing —
// the per-run trace summary printed at the end of verbose CLI runs.
func Summary(spans []SpanSnapshot) string {
	var b strings.Builder
	var walk func(s SpanSnapshot, depth int)
	walk = func(s SpanSnapshot, depth int) {
		fmt.Fprintf(&b, "%s%-12s %9.1fms", strings.Repeat("  ", depth), s.Name, s.DurationMS)
		if s.Samples > 0 {
			fmt.Fprintf(&b, "  %d samples", s.Samples)
			if s.SamplesPS > 0 {
				fmt.Fprintf(&b, " (%.0f/s)", s.SamplesPS)
			}
		}
		if s.Workers > 1 {
			fmt.Fprintf(&b, "  %d workers", s.Workers)
		}
		b.WriteByte('\n')
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	for _, s := range spans {
		walk(s, 0)
	}
	return b.String()
}

package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.counter")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	// The registry hands back the same instance.
	if r.Counter("test.counter") != c {
		t.Fatal("registry returned a different counter for the same name")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test.gauge")
	g.Set(3.25)
	if got := g.Value(); got != 3.25 {
		t.Fatalf("gauge = %v, want 3.25", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.hist", []float64{1, 2, 4})
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g%5) + 0.5) // values 0.5, 1.5, 2.5, 3.5, 4.5
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	// Each goroutine contributes perG observations of (g%5)+0.5.
	wantSum := 0.0
	for g := 0; g < goroutines; g++ {
		wantSum += perG * (float64(g%5) + 0.5)
	}
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	if got := h.Mean(); math.Abs(got-wantSum/float64(goroutines*perG)) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramBucketAssignment(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	h.Observe(0.5)  // ≤ 1
	h.Observe(1)    // ≤ 1 (inclusive upper bound)
	h.Observe(5)    // ≤ 10
	h.Observe(1000) // overflow
	want := []int64{2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 6)
	want := []float64{1, 2, 4, 8, 16, 32}
	if len(got) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExponentialBuckets(0, 2, 4) },
		func() { ExponentialBuckets(1, 1, 4) },
		func() { ExponentialBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-domain buckets did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(7)
	r.Gauge("b.gauge").Set(2.5)
	h := r.Histogram("c.hist", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(50)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["a.count"] != 7 {
		t.Fatalf("counter lost in round trip: %+v", back.Counters)
	}
	if back.Gauges["b.gauge"] != 2.5 {
		t.Fatalf("gauge lost in round trip: %+v", back.Gauges)
	}
	hs := back.Histograms["c.hist"]
	if hs.Count != 2 || hs.Sum != 50.5 {
		t.Fatalf("histogram lost in round trip: %+v", hs)
	}
	// The overflow bucket survives with a null upper bound.
	foundInf := false
	for _, b := range hs.Buckets {
		if b.UpperBound == nil {
			foundInf = true
			if b.Count != 1 {
				t.Fatalf("+Inf bucket count = %d, want 1", b.Count)
			}
		}
	}
	if !foundInf {
		t.Fatal("overflow bucket missing from snapshot")
	}
}

func TestRegistryGetOrCreateConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const goroutines = 16
	counters := make([]*Counter, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			counters[g] = r.Counter("same.name")
			counters[g].Inc()
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if counters[g] != counters[0] {
			t.Fatal("concurrent get-or-create returned distinct counters")
		}
	}
	if got := counters[0].Value(); got != goroutines {
		t.Fatalf("counter = %d, want %d", got, goroutines)
	}
}

func TestRate(t *testing.T) {
	if got := Rate(100, 2); got != 50 {
		t.Fatalf("Rate = %v, want 50", got)
	}
	if got := Rate(100, 0); got != 0 {
		t.Fatalf("Rate with zero seconds = %v, want 0", got)
	}
}

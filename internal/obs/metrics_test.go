package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.counter")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	// The registry hands back the same instance.
	if r.Counter("test.counter") != c {
		t.Fatal("registry returned a different counter for the same name")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test.gauge")
	g.Set(3.25)
	if got := g.Value(); got != 3.25 {
		t.Fatalf("gauge = %v, want 3.25", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.hist", []float64{1, 2, 4})
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g%5) + 0.5) // values 0.5, 1.5, 2.5, 3.5, 4.5
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	// Each goroutine contributes perG observations of (g%5)+0.5.
	wantSum := 0.0
	for g := 0; g < goroutines; g++ {
		wantSum += perG * (float64(g%5) + 0.5)
	}
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	if got := h.Mean(); math.Abs(got-wantSum/float64(goroutines*perG)) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramBucketAssignment(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	h.Observe(0.5)  // ≤ 1
	h.Observe(1)    // ≤ 1 (inclusive upper bound)
	h.Observe(5)    // ≤ 10
	h.Observe(1000) // overflow
	want := []int64{2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 2, 6)
	want := []float64{1, 2, 4, 8, 16, 32}
	if len(got) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExponentialBuckets(0, 2, 4) },
		func() { ExponentialBuckets(1, 1, 4) },
		func() { ExponentialBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-domain buckets did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(7)
	r.Gauge("b.gauge").Set(2.5)
	h := r.Histogram("c.hist", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(50)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["a.count"] != 7 {
		t.Fatalf("counter lost in round trip: %+v", back.Counters)
	}
	if back.Gauges["b.gauge"] != 2.5 {
		t.Fatalf("gauge lost in round trip: %+v", back.Gauges)
	}
	hs := back.Histograms["c.hist"]
	if hs.Count != 2 || hs.Sum != 50.5 {
		t.Fatalf("histogram lost in round trip: %+v", hs)
	}
	// The overflow bucket survives with a null upper bound.
	foundInf := false
	for _, b := range hs.Buckets {
		if b.UpperBound == nil {
			foundInf = true
			if b.Count != 1 {
				t.Fatalf("+Inf bucket count = %d, want 1", b.Count)
			}
		}
	}
	if !foundInf {
		t.Fatal("overflow bucket missing from snapshot")
	}
}

func TestRegistryGetOrCreateConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const goroutines = 16
	counters := make([]*Counter, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			counters[g] = r.Counter("same.name")
			counters[g].Inc()
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if counters[g] != counters[0] {
			t.Fatal("concurrent get-or-create returned distinct counters")
		}
	}
	if got := counters[0].Value(); got != goroutines {
		t.Fatalf("counter = %d, want %d", got, goroutines)
	}
}

func TestRate(t *testing.T) {
	if got := Rate(100, 2); got != 50 {
		t.Fatalf("Rate = %v, want 50", got)
	}
	if got := Rate(100, 0); got != 0 {
		t.Fatalf("Rate with zero seconds = %v, want 0", got)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%v) on empty histogram = %v, want 0", q, got)
		}
	}
	// No finite bounds at all: nothing to interpolate against.
	none := newHistogram(nil)
	none.Observe(42)
	if got := none.Quantile(0.5); got != 0 {
		t.Fatalf("Quantile on boundless histogram = %v, want 0", got)
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	h := newHistogram([]float64{10})
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	// All mass in the one finite bucket [0, 10]: the median interpolates
	// to its middle, q=1 reaches its upper bound.
	if got := h.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Fatalf("median = %v, want 5", got)
	}
	if got := h.Quantile(1); math.Abs(got-10) > 1e-9 {
		t.Fatalf("q=1 = %v, want 10", got)
	}
	if got := h.Quantile(0); got < 0 || got > 10 {
		t.Fatalf("q=0 = %v, want within [0, 10]", got)
	}
}

func TestHistogramQuantileAllOverflow(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	for i := 0; i < 10; i++ {
		h.Observe(100) // +Inf bucket
	}
	// The overflow bucket has no upper edge: the largest finite bound is
	// the best (under-)estimate at every rank.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); math.Abs(got-2) > 1e-9 {
			t.Fatalf("Quantile(%v) = %v, want the largest finite bound 2", q, got)
		}
	}
}

func TestHistogramQuantileInfBucketBoundary(t *testing.T) {
	// 90 observations in [0, 1], 10 in the +Inf bucket: p50 interpolates
	// inside the finite bucket, p99 lands in the overflow and clamps to
	// the finite edge instead of inventing an upper bound.
	h := newHistogram([]float64{1})
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(7)
	}
	if got := h.Quantile(0.5); math.Abs(got-50.0/90.0) > 1e-9 {
		t.Fatalf("p50 = %v, want %v", got, 50.0/90.0)
	}
	if got := h.Quantile(0.99); math.Abs(got-1) > 1e-9 {
		t.Fatalf("p99 = %v, want clamp to finite bound 1", got)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// 10 observations ≤1, 10 in (1,2], 20 in (2,4].
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
		h.Observe(3)
		h.Observe(3.5)
	}
	// rank(0.25) = 10 → exactly the full first bucket → its upper bound.
	if got := h.Quantile(0.25); math.Abs(got-1) > 1e-9 {
		t.Fatalf("q=0.25 = %v, want 1", got)
	}
	// rank(0.5) = 20 → end of second bucket.
	if got := h.Quantile(0.5); math.Abs(got-2) > 1e-9 {
		t.Fatalf("q=0.5 = %v, want 2", got)
	}
	// rank(0.75) = 30 → halfway through the (2,4] bucket → 3.
	if got := h.Quantile(0.75); math.Abs(got-3) > 1e-9 {
		t.Fatalf("q=0.75 = %v, want 3", got)
	}
	// Out-of-range q clamps rather than extrapolating.
	if got := h.Quantile(2); math.Abs(got-4) > 1e-9 {
		t.Fatalf("q=2 = %v, want 4", got)
	}
	if lo := h.Quantile(-1); lo < 0 || lo > 1 {
		t.Fatalf("q=-1 = %v, want inside the first bucket", lo)
	}
}

func TestHistogramQuantileConcurrentWithObserve(t *testing.T) {
	// Quantile and Snapshot read bucket counters with atomic loads while
	// Observe mutates them; this drives all three concurrently so `make
	// race` proves the claim. Estimates taken mid-flight only need to be
	// well-formed (finite, within the bucket range), not exact.
	r := NewRegistry()
	h := r.Histogram("test.quantile.race", []float64{0.001, 0.01, 0.1, 1})
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%100) / 50.0)
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				for _, q := range []float64{0.5, 0.95, 0.99} {
					v := h.Quantile(q)
					if math.IsNaN(v) || v < 0 || v > 1 {
						t.Errorf("mid-flight Quantile(%v) = %v out of range", q, v)
						return
					}
				}
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := h.Quantile(1); math.Abs(got-1) > 1e-9 {
		t.Fatalf("settled q=1 = %v, want the top finite bound 1", got)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	run := tr.StartSpan("experiment")
	enc := tr.StartSpan("encode")
	enc.AddSamples(120)
	enc.SetWorkers(4)
	enc.End()
	train := tr.StartSpan("train")
	retrain := tr.StartSpan("retrain")
	retrain.AddSamples(120)
	retrain.End()
	train.End()
	run.End()

	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("want 1 root span, got %d", len(snap))
	}
	root := snap[0]
	if root.Name != "experiment" || len(root.Children) != 2 {
		t.Fatalf("root = %q with %d children, want experiment with 2", root.Name, len(root.Children))
	}
	if root.Children[0].Name != "encode" || root.Children[1].Name != "train" {
		t.Fatalf("children = %q, %q", root.Children[0].Name, root.Children[1].Name)
	}
	if got := root.Children[0].Samples; got != 120 {
		t.Fatalf("encode samples = %d, want 120", got)
	}
	if got := root.Children[0].Workers; got != 4 {
		t.Fatalf("encode workers = %d, want 4", got)
	}
	if len(root.Children[1].Children) != 1 || root.Children[1].Children[0].Name != "retrain" {
		t.Fatalf("train children = %+v", root.Children[1].Children)
	}
	if root.DurationMS < root.Children[1].DurationMS {
		t.Fatalf("parent duration %v below child %v", root.DurationMS, root.Children[1].DurationMS)
	}
}

func TestSpanDoubleEndAndNil(t *testing.T) {
	tr := NewTracer()
	s := tr.StartSpan("phase")
	s.End()
	s.End() // no-op
	var nilSpan *Span
	nilSpan.End() // no-op, no panic
	nilSpan.AddSamples(3)
	nilSpan.SetWorkers(2)
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("spans = %d, want 1", got)
	}
}

func TestSpanConcurrentSampleUpdates(t *testing.T) {
	tr := NewTracer()
	s := tr.StartSpan("encode")
	var wg sync.WaitGroup
	const workers, perW = 8, 1000
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				s.AddSamples(1)
			}
		}()
	}
	wg.Wait()
	s.End()
	if got := tr.Snapshot()[0].Samples; got != workers*perW {
		t.Fatalf("samples = %d, want %d", got, workers*perW)
	}
}

func TestTracerCapDropsButDoesNotBreak(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < maxTraceSpans+10; i++ {
		tr.StartSpan("s").End()
	}
	if got := tr.Dropped(); got != 10 {
		t.Fatalf("dropped = %d, want 10", got)
	}
	if got := len(tr.Snapshot()); got != maxTraceSpans {
		t.Fatalf("retained = %d, want %d", got, maxTraceSpans)
	}
	tr.Reset()
	if got := len(tr.Snapshot()); got != 0 {
		t.Fatalf("after reset: %d spans", got)
	}
}

func TestOutOfOrderEnd(t *testing.T) {
	tr := NewTracer()
	a := tr.StartSpan("a")
	b := tr.StartSpan("b")
	a.End() // out of order: a ends while b is open
	c := tr.StartSpan("c")
	c.End()
	b.End()
	snap := tr.Snapshot()
	if len(snap) != 1 || snap[0].Name != "a" {
		t.Fatalf("roots = %+v", snap)
	}
	// b nested under a, c nested under b (the innermost still-open span).
	if len(snap[0].Children) != 1 || snap[0].Children[0].Name != "b" {
		t.Fatalf("a children = %+v", snap[0].Children)
	}
	if len(snap[0].Children[0].Children) != 1 || snap[0].Children[0].Children[0].Name != "c" {
		t.Fatalf("b children = %+v", snap[0].Children[0].Children)
	}
}

func TestWriteTraceJSON(t *testing.T) {
	ResetTrace()
	defer ResetTrace()
	s := StartSpan("encode")
	s.AddSamples(10)
	s.End()
	GetCounter("trace.test.counter").Inc()

	var buf bytes.Buffer
	if err := WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	found := false
	for _, sp := range back.Spans {
		if sp.Name == "encode" && sp.Samples == 10 {
			found = true
		}
	}
	if !found {
		t.Fatalf("encode span missing from trace: %+v", back.Spans)
	}
	if back.Metrics.Counters["trace.test.counter"] < 1 {
		t.Fatalf("metrics snapshot missing counter: %+v", back.Metrics.Counters)
	}
}

func TestSummaryRendersPhases(t *testing.T) {
	tr := NewTracer()
	run := tr.StartSpan("train_classifier")
	enc := tr.StartSpan("encode")
	enc.AddSamples(100)
	enc.SetWorkers(8)
	enc.End()
	run.End()
	out := Summary(tr.Snapshot())
	for _, want := range []string{"train_classifier", "encode", "100 samples", "8 workers"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves /debug/vars (expvar, including the prid_metrics
// snapshot) and /debug/pprof/* on a dedicated listener. It is what the
// CLI's --metrics-addr flag starts.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeDebug binds addr (":0" picks a free port), publishes the Default
// registry to expvar, and serves the debug endpoints in a background
// goroutine until Close.
func ServeDebug(addr string) (*DebugServer, error) {
	PublishExpvar()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d := &DebugServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	// A dead debug server is invisible exactly when it is needed; log
	// any exit that was not a requested Close.
	go func() {
		if err := d.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			Logger("obs").Error("debug server exited", "err", err)
		}
	}()
	return d, nil
}

// Addr returns the bound address (resolving ":0" to the real port).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server and releases the listener.
func (d *DebugServer) Close() error { return d.srv.Close() }

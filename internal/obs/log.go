package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
)

// levelVar is the process-wide log level, adjustable at runtime (the CLI
// --log-level flag) and seeded from PRID_LOG_LEVEL at init.
var levelVar = func() *slog.LevelVar {
	lv := &slog.LevelVar{}
	lv.Set(slog.LevelInfo)
	if env := os.Getenv("PRID_LOG_LEVEL"); env != "" {
		if l, err := ParseLevel(env); err == nil {
			lv.Set(l)
		} else {
			fmt.Fprintf(os.Stderr, "obs: ignoring PRID_LOG_LEVEL=%q: %v\n", env, err)
		}
	}
	return lv
}()

var (
	logMu   sync.RWMutex
	logBase = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: levelVar}))
)

// ParseLevel maps the conventional level names to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", s)
}

// SetLevel adjusts the shared log level at runtime.
func SetLevel(l slog.Level) { levelVar.Set(l) }

// Level returns the current shared log level.
func Level() slog.Level { return levelVar.Level() }

// SetLogOutput redirects the shared logger (used by tests to capture
// output). The level var is preserved.
func SetLogOutput(w io.Writer) {
	logMu.Lock()
	logBase = slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: levelVar}))
	logMu.Unlock()
}

// Logger returns the shared structured logger scoped to a component
// ("hdc", "experiments", "cmd/prid", "examples/quickstart", ...). All
// loggers share one level and one output.
func Logger(component string) *slog.Logger {
	logMu.RLock()
	defer logMu.RUnlock()
	return logBase.With(slog.String("component", component))
}

// Fatal logs msg (with the usual alternating key/value args) at error
// level and exits with status 1 — the slog replacement for log.Fatal in
// the examples.
func Fatal(l *slog.Logger, msg string, args ...any) {
	l.Error(msg, args...)
	os.Exit(1)
}

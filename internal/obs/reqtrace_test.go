package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewRequestIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		if !strings.Contains(id, "-") {
			t.Fatalf("request ID %q missing prefix separator", id)
		}
		seen[id] = true
	}
}

func TestReqTraceStagesAndSnapshot(t *testing.T) {
	tr := NewReqTrace("req-1", "predict")
	tr.Mark("admitted")
	tr.Mark("batch_queue")
	tr.Mark("predict")
	tr.Finish()

	snap := tr.Snapshot()
	if snap.ID != "req-1" || snap.Endpoint != "predict" {
		t.Fatalf("snapshot identity = %q/%q", snap.ID, snap.Endpoint)
	}
	if len(snap.Stages) != 3 {
		t.Fatalf("got %d stages, want 3", len(snap.Stages))
	}
	names := []string{"admitted", "batch_queue", "predict"}
	prevEnd := 0.0
	for i, s := range snap.Stages {
		if s.Name != names[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Name, names[i])
		}
		if s.EndMS < prevEnd {
			t.Errorf("stage %d end %.3fms before previous %.3fms", i, s.EndMS, prevEnd)
		}
		if s.DurationMS < 0 {
			t.Errorf("stage %d negative duration %.3fms", i, s.DurationMS)
		}
		if want := s.EndMS - prevEnd; !approx(s.DurationMS, want) {
			t.Errorf("stage %d duration %.6f, want end-delta %.6f", i, s.DurationMS, want)
		}
		prevEnd = s.EndMS
	}
	if snap.TotalMS < prevEnd {
		t.Errorf("total %.3fms shorter than last stage end %.3fms", snap.TotalMS, prevEnd)
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestReqTraceFinishFreezes(t *testing.T) {
	tr := NewReqTrace("req-2", "audit")
	tr.Finish()
	total := tr.Total()
	tr.Mark("late") // must be dropped: the request already answered
	time.Sleep(time.Millisecond)
	tr.Finish() // second Finish keeps the first total
	if got := tr.Total(); got != total {
		t.Fatalf("total changed after second Finish: %v -> %v", total, got)
	}
	if n := len(tr.Snapshot().Stages); n != 0 {
		t.Fatalf("late mark retained: %d stages", n)
	}
}

func TestReqTraceStageCapacity(t *testing.T) {
	tr := NewReqTrace("req-3", "predict")
	for i := 0; i < reqTraceMaxStages+5; i++ {
		tr.Mark("stage")
	}
	if n := len(tr.Snapshot().Stages); n != reqTraceMaxStages {
		t.Fatalf("retained %d stages, want cap %d", n, reqTraceMaxStages)
	}
}

func TestReqTraceNilSafe(t *testing.T) {
	var tr *ReqTrace
	tr.Mark("x")
	tr.Finish()
	if tr.Total() != 0 || tr.ID() != "" || tr.Endpoint() != "" {
		t.Fatal("nil trace accessors must return zero values")
	}
	if snap := tr.Snapshot(); snap.ID != "" || len(snap.Stages) != 0 {
		t.Fatal("nil trace snapshot must be empty")
	}
}

func TestReqTraceContextRoundTrip(t *testing.T) {
	if got := ReqTraceFrom(context.Background()); got != nil {
		t.Fatalf("empty context carried trace %v", got)
	}
	tr := NewReqTrace("req-4", "similarities")
	ctx := ContextWithReqTrace(context.Background(), tr)
	if got := ReqTraceFrom(ctx); got != tr {
		t.Fatalf("context round-trip returned %v, want %v", got, tr)
	}
}

func TestReqTraceConcurrentMarks(t *testing.T) {
	// A request goroutine and a batcher goroutine may mark the same
	// trace; a client-abandoned request may even race Finish against a
	// late Mark. The race detector run (make race) is the real check —
	// this test just drives the interleavings.
	tr := NewReqTrace("req-5", "predict")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Mark("stage")
				_ = tr.Total()
				_ = tr.Snapshot()
			}
		}()
	}
	tr.Finish()
	wg.Wait()
}

func TestTraceRingKeepsSlowest(t *testing.T) {
	ring := NewTraceRing(3)
	mk := func(id string, total time.Duration) *ReqTrace {
		tr := NewReqTrace(id, "predict")
		tr.mu.Lock()
		tr.done = true
		tr.total = total
		tr.mu.Unlock()
		return tr
	}
	for i, d := range []time.Duration{5, 1, 9, 3, 7, 2} {
		ring.Record(mk(string(rune('a'+i)), d*time.Millisecond))
	}
	snap := ring.Snapshot()
	if snap.Recorded != 6 || snap.Capacity != 3 {
		t.Fatalf("recorded/capacity = %d/%d, want 6/3", snap.Recorded, snap.Capacity)
	}
	if len(snap.Slowest) != 3 {
		t.Fatalf("retained %d traces, want 3", len(snap.Slowest))
	}
	// The three slowest were 9, 7, 5ms, in descending order.
	want := []float64{9, 7, 5}
	for i, s := range snap.Slowest {
		if !approx(s.TotalMS, want[i]) {
			t.Errorf("slowest[%d] = %.3fms, want %.0fms", i, s.TotalMS, want[i])
		}
	}
}

func TestTraceRingSnapshotJSON(t *testing.T) {
	ring := NewTraceRing(2)
	tr := NewReqTrace("req-json", "audit")
	tr.Mark("admitted")
	tr.Finish()
	ring.Record(tr)
	raw, err := json.Marshal(ring.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back TraceRingSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Slowest) != 1 || back.Slowest[0].ID != "req-json" {
		t.Fatalf("JSON round trip lost the trace: %s", raw)
	}
}

func TestTraceRingConcurrentRecord(t *testing.T) {
	ring := NewTraceRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr := NewReqTrace(NewRequestID(), "predict")
				tr.Finish()
				ring.Record(tr)
				_ = ring.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if got := ring.Recorded(); got != 200 {
		t.Fatalf("recorded %d, want 200", got)
	}
}

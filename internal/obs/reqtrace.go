package obs

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing: a lightweight per-request trace (request ID +
// ordered stage marks) carried through context.Context by the serving
// layer, plus a bounded collection of the slowest completed traces for
// /debug/requests. Unlike Span — which models the sequential pipeline
// phases of a CLI run — a ReqTrace is owned by one request and may be
// marked from a helper goroutine (the micro-batcher records the
// queue-wait and service stages), so every mutation goes through a small
// mutex. The stage slice is allocated once at construction and never
// grows past its fixed capacity, keeping the per-request cost to one
// allocation and a handful of short critical sections.

// reqTraceMaxStages bounds the marks one trace retains. The serving
// pipeline records at most four (admission, batch queue, service,
// write); the headroom is for future stages, and overflow marks are
// dropped rather than grown into.
const reqTraceMaxStages = 8

// reqIDPrefix distinguishes request IDs across process restarts: the
// low bits of the process start time, fixed at init. Request IDs are
// operational correlation handles, not part of any numeric result, so
// the wall-clock read is sanctioned.
var reqIDPrefix = uint32(time.Now().UnixNano()) //pridlint:allow determinism request-ID prefix is operational correlation state, never a numeric input

// reqIDSeq is the per-process request sequence number.
var reqIDSeq atomic.Uint64

// NewRequestID returns a process-unique request ID, cheap enough to mint
// per request: an 8-hex-digit per-process prefix plus a sequence number.
func NewRequestID() string {
	return fmt.Sprintf("%08x-%06d", reqIDPrefix, reqIDSeq.Add(1))
}

// ReqStage is one recorded stage boundary: the named stage ended at
// Offset from the trace start. Stage durations are the deltas between
// consecutive offsets (the first stage starts at zero).
type ReqStage struct {
	Name   string
	Offset time.Duration
}

// ReqTrace is one request's trace. Construct with NewReqTrace, Mark the
// end of each stage as the request moves through the pipeline, Finish
// when the response is written. All methods are safe for concurrent use
// and nil-safe, so instrumentation points need no guards.
type ReqTrace struct {
	id       string
	endpoint string
	start    time.Time

	mu     sync.Mutex
	stages []ReqStage
	total  time.Duration
	done   bool
}

// NewReqTrace starts a trace for one request on the named endpoint.
func NewReqTrace(id, endpoint string) *ReqTrace {
	return &ReqTrace{
		id:       id,
		endpoint: endpoint,
		start:    time.Now(),
		stages:   make([]ReqStage, 0, reqTraceMaxStages),
	}
}

// ID returns the request ID the trace was created with.
func (t *ReqTrace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Endpoint returns the endpoint name the trace was created for.
func (t *ReqTrace) Endpoint() string {
	if t == nil {
		return ""
	}
	return t.endpoint
}

// Mark records that the named stage ended now. Marks after Finish or
// past the stage capacity are dropped — a request whose batch work
// completes after the client gave up must not mutate a finished trace.
func (t *ReqTrace) Mark(stage string) {
	if t == nil {
		return
	}
	off := time.Since(t.start)
	t.mu.Lock()
	if !t.done && len(t.stages) < cap(t.stages) {
		t.stages = append(t.stages, ReqStage{Name: stage, Offset: off})
	}
	t.mu.Unlock()
}

// Finish fixes the trace's total duration and freezes its stages.
// Finishing twice keeps the first total.
func (t *ReqTrace) Finish() {
	if t == nil {
		return
	}
	total := time.Since(t.start)
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.total = total
	}
	t.mu.Unlock()
}

// Total returns the finished duration (the running duration if Finish
// has not been called yet).
func (t *ReqTrace) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.done {
		return time.Since(t.start)
	}
	return t.total
}

// ReqStageSnapshot is the JSON form of one stage: when it ended (offset
// from the request start) and how long it took (delta from the previous
// stage's end).
type ReqStageSnapshot struct {
	Name       string  `json:"name"`
	EndMS      float64 `json:"end_ms"`
	DurationMS float64 `json:"duration_ms"`
}

// ReqTraceSnapshot is the JSON form of one request trace, what
// /debug/requests serves.
type ReqTraceSnapshot struct {
	ID       string             `json:"id"`
	Endpoint string             `json:"endpoint"`
	Start    time.Time          `json:"start"`
	TotalMS  float64            `json:"total_ms"`
	Stages   []ReqStageSnapshot `json:"stages,omitempty"`
}

// Snapshot copies the trace into its JSON form, deriving per-stage
// durations from the consecutive mark offsets.
func (t *ReqTrace) Snapshot() ReqTraceSnapshot {
	if t == nil {
		return ReqTraceSnapshot{}
	}
	t.mu.Lock()
	stages := append([]ReqStage(nil), t.stages...)
	total := t.total
	if !t.done {
		total = time.Since(t.start)
	}
	t.mu.Unlock()
	snap := ReqTraceSnapshot{
		ID:       t.id,
		Endpoint: t.endpoint,
		Start:    t.start,
		TotalMS:  float64(total) / float64(time.Millisecond),
	}
	prev := time.Duration(0)
	for _, s := range stages {
		snap.Stages = append(snap.Stages, ReqStageSnapshot{
			Name:       s.Name,
			EndMS:      float64(s.Offset) / float64(time.Millisecond),
			DurationMS: float64(s.Offset-prev) / float64(time.Millisecond),
		})
		prev = s.Offset
	}
	return snap
}

// reqTraceKey is the context key ReqTrace rides under.
type reqTraceKey struct{}

// ContextWithReqTrace returns ctx carrying tr.
func ContextWithReqTrace(ctx context.Context, tr *ReqTrace) context.Context {
	return context.WithValue(ctx, reqTraceKey{}, tr)
}

// ReqTraceFrom returns the trace carried by ctx, or nil. The nil result
// composes with the nil-safe ReqTrace methods, so instrumentation points
// in paths that may run without a trace stay unconditional.
func ReqTraceFrom(ctx context.Context) *ReqTrace {
	tr, _ := ctx.Value(reqTraceKey{}).(*ReqTrace)
	return tr
}

// TraceRing retains the N slowest completed request traces — the
// bounded evidence buffer behind /debug/requests. Record is O(N) with N
// small (default 32), under one short mutex hold; it is a pressure
// gauge, not a hot-path structure.
type TraceRing struct {
	mu       sync.Mutex
	capacity int
	traces   []*ReqTrace
	recorded int64
}

// NewTraceRing returns a ring retaining the n slowest traces (n < 1 is
// raised to 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{capacity: n}
}

// Record offers a finished trace to the ring: it is kept if the ring has
// room or if it is slower than the current fastest resident, which it
// then evicts.
func (r *TraceRing) Record(tr *ReqTrace) {
	if tr == nil {
		return
	}
	total := tr.Total()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recorded++
	if len(r.traces) < r.capacity {
		r.traces = append(r.traces, tr)
		return
	}
	min := 0
	for i := 1; i < len(r.traces); i++ {
		if r.traces[i].Total() < r.traces[min].Total() {
			min = i
		}
	}
	if total > r.traces[min].Total() {
		r.traces[min] = tr
	}
}

// Recorded returns how many traces have been offered to the ring.
func (r *TraceRing) Recorded() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recorded
}

// TraceRingSnapshot is the JSON form of the ring: how many requests were
// seen, how many traces are retained, and the residents sorted
// slowest-first.
type TraceRingSnapshot struct {
	Recorded int64              `json:"recorded"`
	Capacity int                `json:"capacity"`
	Slowest  []ReqTraceSnapshot `json:"slowest"`
}

// Snapshot copies the ring, slowest trace first.
func (r *TraceRing) Snapshot() TraceRingSnapshot {
	r.mu.Lock()
	traces := append([]*ReqTrace(nil), r.traces...)
	snap := TraceRingSnapshot{Recorded: r.recorded, Capacity: r.capacity}
	r.mu.Unlock()
	snap.Slowest = make([]ReqTraceSnapshot, 0, len(traces))
	for _, t := range traces {
		snap.Slowest = append(snap.Slowest, t.Snapshot())
	}
	sort.Slice(snap.Slowest, func(i, j int) bool { return snap.Slowest[i].TotalMS > snap.Slowest[j].TotalMS })
	return snap
}

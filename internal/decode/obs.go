package decode

import (
	"time"

	"prid/internal/obs"
)

// Decode calls are per-hypervector, so they get a counter + histogram
// only; the one-off least-squares factorization is expensive enough to
// warrant a span.
var (
	metricDecodes    = obs.GetCounter("decode.vectors")
	metricDecodeSecs = obs.GetHistogram("decode.seconds", nil)
	metricFactorRuns = obs.GetCounter("decode.ls_factorizations")
	metricFactorSecs = obs.GetHistogram("decode.ls_factor.seconds", nil)
)

// observeDecode records one Decode call started at start.
func observeDecode(start time.Time) {
	metricDecodes.Inc()
	metricDecodeSecs.ObserveSince(start)
}

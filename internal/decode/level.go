package decode

import (
	"fmt"

	"prid/internal/hdc"
	"prid/internal/vecmath"
)

// Level inverts the record-based (ID–level) encoding — demonstrating that
// switching encoders is *not* a privacy defense either. The record
// encoding H = Σ_i ID_i ⊙ L_{q(f_i)} is nonlinear in the feature values,
// so the linear decoders fail on it (the encoder ablation shows −dB
// PSNR); but an attacker holding the encoder can still invert it by
// correlation: for feature i, every candidate level q scores
//
//	s_q = ⟨H, ID_i ⊙ L_q⟩ ≈ D·[q = q(f_i)] + cross-talk,
//
// so argmax_q s_q recovers the quantized feature. The recovered value is
// the level's bin midpoint — exact up to the encoder's own quantization.
type Level struct {
	Encoder *hdc.LevelEncoder
}

// Name implements Decoder.
func (l Level) Name() string { return "level-correlation" }

// Decode implements Decoder: it returns the bin-midpoint estimate of each
// feature.
func (l Level) Decode(h []float64) []float64 {
	e := l.Encoder
	if len(h) != e.Dim() {
		panic(fmt.Sprintf("decode: Level.Decode length %d, want %d", len(h), e.Dim()))
	}
	n := e.Features()
	out := make([]float64, n)
	bound := make([]float64, e.Dim())
	for i := 0; i < n; i++ {
		id := e.ID(i)
		best, bestScore := 0, 0.0
		for q := 0; q <= e.Quantization(); q++ {
			lvl := e.Level(q)
			for j := range bound {
				bound[j] = id[j] * lvl[j]
			}
			if s := vecmath.Dot(h, bound); q == 0 || s > bestScore {
				best, bestScore = q, s
			}
		}
		out[i] = e.LevelMidpoint(best)
	}
	return out
}

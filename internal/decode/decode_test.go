package decode

import (
	"math"
	"testing"

	"prid/internal/hdc"
	"prid/internal/rng"
	"prid/internal/vecmath"
)

// setup builds a basis and one encoded sample for decoder tests.
func setup(n, d int, seed uint64) (*hdc.Basis, []float64, []float64) {
	src := rng.New(seed)
	b := hdc.NewBasis(n, d, src)
	f := make([]float64, n)
	src.FillUniform(f, 0, 1)
	return b, f, b.Encode(f)
}

func TestAnalyticalRecoversApproximately(t *testing.T) {
	b, f, h := setup(16, 8192, 1)
	got := Analytical{Basis: b}.Decode(h)
	for k := range f {
		if math.Abs(got[k]-f[k]) > 0.1 {
			t.Fatalf("feature %d: got %v want %v", k, got[k], f[k])
		}
	}
}

func TestIterativeBeatsOneShot(t *testing.T) {
	// Iterative error feedback must reduce decoding MSE relative to the
	// one-shot analytical decode on the same sample.
	b, f, h := setup(64, 1024, 2)
	oneShot := Analytical{Basis: b}.Decode(h)
	iterative := NewIterativeAnalytical(b).Decode(h)
	mse1 := vecmath.MSE(f, oneShot)
	mseIter := vecmath.MSE(f, iterative)
	if mseIter >= mse1 {
		t.Fatalf("iterative MSE %g not better than one-shot %g", mseIter, mse1)
	}
}

func TestLeastSquaresExactOnCleanData(t *testing.T) {
	// With no noise and n < D, ordinary least squares inverts the encoding
	// exactly (up to floating point).
	b, f, h := setup(32, 512, 3)
	ls, err := NewLeastSquares(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := ls.Decode(h)
	if mse := vecmath.MSE(f, got); mse > 1e-18 {
		t.Fatalf("LS decode MSE %g on clean data, want ~0", mse)
	}
}

func TestLearningBeatsAnalyticalUnderNoise(t *testing.T) {
	// The paper's Figure 1 result: with 20% Gaussian noise on the encoding,
	// the learning-based decoder achieves markedly higher PSNR than the
	// analytical one.
	b, f, h := setup(64, 2048, 4)
	src := rng.New(99)
	AddGaussianNoise(h, 0.2, src)
	ls, err := NewLeastSquares(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	analytical := Analytical{Basis: b}.Decode(h)
	learned := ls.Decode(h)
	pa := vecmath.PSNR(f, analytical)
	pl := vecmath.PSNR(f, learned)
	if pl <= pa {
		t.Fatalf("learning PSNR %v not above analytical %v", pl, pa)
	}
}

func TestSGDMatchesLeastSquares(t *testing.T) {
	// The SGD decoder solves the same convex regression; its estimate must
	// land close to the closed-form solution.
	b, f, h := setup(12, 512, 5)
	ls, err := NewLeastSquares(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	exact := ls.Decode(h)
	sgd := NewSGD(b).Decode(h)
	if mse := vecmath.MSE(exact, sgd); mse > 1e-3 {
		t.Fatalf("SGD decode MSE %g from LS solution", mse)
	}
	if mse := vecmath.MSE(f, sgd); mse > 1e-3 {
		t.Fatalf("SGD decode MSE %g from truth", mse)
	}
}

func TestRidgeShrinksSolution(t *testing.T) {
	b, _, h := setup(16, 256, 6)
	ls0, err := NewLeastSquares(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	lsBig, err := NewLeastSquares(b, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	n0 := vecmath.Norm2(ls0.Decode(h))
	nBig := vecmath.Norm2(lsBig.Decode(h))
	if nBig >= n0 {
		t.Fatalf("ridge did not shrink: %v >= %v", nBig, n0)
	}
}

func TestNewLeastSquaresRejectsNegativeRidge(t *testing.T) {
	b, _, _ := setup(4, 64, 7)
	if _, err := NewLeastSquares(b, -1); err == nil {
		t.Fatal("negative ridge accepted")
	}
}

func TestDecoderNames(t *testing.T) {
	b, _, _ := setup(4, 64, 8)
	ls, _ := NewLeastSquares(b, 0)
	names := map[string]bool{}
	for _, d := range []Decoder{Analytical{Basis: b}, NewIterativeAnalytical(b), ls, NewSGD(b)} {
		if d.Name() == "" {
			t.Fatal("empty decoder name")
		}
		if names[d.Name()] {
			t.Fatalf("duplicate decoder name %q", d.Name())
		}
		names[d.Name()] = true
	}
}

func TestClassesRecoverMeanTrainSample(t *testing.T) {
	// Decoding a bundled class and normalizing by count must recover the
	// mean of the class's train features (exactly, for the LS decoder).
	src := rng.New(9)
	const n, d, per = 10, 256, 7
	b := hdc.NewBasis(n, d, src)
	var x [][]float64
	var y []int
	mean := make([]float64, n)
	for i := 0; i < per; i++ {
		f := make([]float64, n)
		src.FillUniform(f, 0, 1)
		x = append(x, f)
		y = append(y, 0)
		vecmath.Axpy(1.0/per, f, mean)
	}
	m := hdc.Train(b, x, y, 1)
	ls, err := NewLeastSquares(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	decoded := Classes(ls, m, true)
	if mse := vecmath.MSE(decoded[0], mean); mse > 1e-18 {
		t.Fatalf("decoded class MSE %g from class mean", mse)
	}
	// Without normalization the decoded class is the feature *sum*.
	raw := Classes(ls, m, false)
	scaled := vecmath.Clone(mean)
	vecmath.Scale(per, scaled)
	if mse := vecmath.MSE(raw[0], scaled); mse > 1e-15 {
		t.Fatalf("unnormalized decoded class MSE %g from feature sum", mse)
	}
}

func TestAddGaussianNoise(t *testing.T) {
	src := rng.New(10)
	h := make([]float64, 4096)
	vecmath.Fill(h, 2)
	sigma := AddGaussianNoise(h, 0.5, src)
	if math.Abs(sigma-1) > 1e-12 { // RMS of the constant-2 signal is 2; 0.5×2 = 1
		t.Fatalf("sigma = %v, want 1", sigma)
	}
	var w vecmath.Welford
	for _, v := range h {
		w.Add(v)
	}
	if math.Abs(w.Mean()-2) > 0.1 {
		t.Fatalf("noisy mean %v drifted from 2", w.Mean())
	}
	if math.Abs(w.StdDev()-1) > 0.1 {
		t.Fatalf("noisy stddev %v, want ~1", w.StdDev())
	}
	if got := AddGaussianNoise(h, 0, src); got != 0 {
		t.Fatal("zero fraction should add nothing")
	}
}

func TestAddGaussianNoisePanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative fraction did not panic")
		}
	}()
	AddGaussianNoise([]float64{1}, -0.1, rng.New(1))
}

func TestDecodePanicsOnWrongLength(t *testing.T) {
	b, _, _ := setup(4, 64, 11)
	ls, _ := NewLeastSquares(b, 0)
	for _, d := range []Decoder{Analytical{Basis: b}, ls, NewSGD(b)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted wrong-length input", d.Name())
				}
			}()
			d.Decode(make([]float64, 3))
		}()
	}
}

func BenchmarkAnalyticalDecode256x2048(b *testing.B) {
	basis, _, h := setup(256, 2048, 1)
	dec := Analytical{Basis: basis}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode(h)
	}
}

func BenchmarkLeastSquaresDecode256x2048(b *testing.B) {
	basis, _, h := setup(256, 2048, 1)
	ls, err := NewLeastSquares(basis, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls.Decode(h)
	}
}

func BenchmarkLeastSquaresSetup256x2048(b *testing.B) {
	basis, _, _ := setup(256, 2048, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewLeastSquares(basis, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLevelDecoderInvertsRecordEncoding(t *testing.T) {
	// The record encoding defeats the *linear* decoders, but correlation
	// decoding recovers it to within the encoder's own quantization — the
	// encoder-swap "defense" fails against an attacker who has the encoder.
	src := rng.New(60)
	const n, d, q = 24, 4096, 16
	enc := hdc.NewLevelEncoder(n, d, q, 0, 1, src)
	f := make([]float64, n)
	src.FillUniform(f, 0, 1)
	h := enc.Encode(f)
	got := Level{Encoder: enc}.Decode(h)
	binWidth := 1.0 / q
	for i := range f {
		if diff := math.Abs(got[i] - f[i]); diff > binWidth {
			t.Fatalf("feature %d: recovered %.3f vs true %.3f (more than one bin off)", i, got[i], f[i])
		}
	}
	// And it must beat the linear LS decoder on the same encoding by a
	// wide margin.
	basis := hdc.NewBasis(n, d, rng.New(61))
	ls, err := NewLeastSquares(basis, 0)
	if err != nil {
		t.Fatal(err)
	}
	linear := ls.Decode(h)
	if vecmath.PSNR(f, got) < vecmath.PSNR(f, linear)+10 {
		t.Fatalf("correlation decode %.1f dB not well above linear %.1f dB on record encoding",
			vecmath.PSNR(f, got), vecmath.PSNR(f, linear))
	}
}

func TestLevelDecoderName(t *testing.T) {
	enc := hdc.NewLevelEncoder(2, 64, 4, 0, 1, rng.New(62))
	l := Level{Encoder: enc}
	if l.Name() == "" {
		t.Fatal("empty name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong length accepted")
		}
	}()
	l.Decode(make([]float64, 3))
}

// Package decode inverts the HDC encoding: it recovers feature-space
// vectors from hypervectors, which is the capability the whole PRID attack
// rests on (paper Section III-A). Three decoders are provided:
//
//   - Analytical: f_k ≈ (B_k · H) / D, exploiting near-orthogonality of the
//     random basis. One pass, noisy (cross-talk between bases).
//   - IterativeAnalytical: the paper's error-feedback refinement — re-encode
//     the estimate, decode the residual, and correct with step λ until the
//     estimate stabilizes.
//   - LeastSquares: the paper's "learning-based" decoder in closed form.
//     Encoding is H = Bᵀf (B stacks base hypervectors as rows), so decoding
//     is linear regression; we solve the ridge normal equations
//     (B·Bᵀ + αI) f = B·H with a cached Cholesky factorization.
//   - SGD: the same regression solved the way the paper describes it — a
//     single-layer network whose trained weights are the decoded features.
//
// All decoders implement Decoder, so the attack and defense layers are
// agnostic to which one is in use.
package decode

import (
	"fmt"
	"math"
	"time"

	"prid/internal/hdc"
	"prid/internal/nn"
	"prid/internal/obs"
	"prid/internal/rng"
	"prid/internal/vecmath"
)

// Decoder recovers an n-feature vector from a D-dimensional hypervector.
type Decoder interface {
	// Decode returns the feature-space estimate of h.
	Decode(h []float64) []float64
	// Name identifies the decoder in experiment reports.
	Name() string
}

// Analytical is the one-shot analytical decoder f_k = (B_k · H)/D.
type Analytical struct {
	Basis *hdc.Basis
}

// Name implements Decoder.
func (a Analytical) Name() string { return "analytical" }

// Decode implements Decoder.
func (a Analytical) Decode(h []float64) []float64 {
	b := a.Basis
	if len(h) != b.Dim() {
		panic(fmt.Sprintf("decode: Analytical.Decode length %d, want %d", len(h), b.Dim()))
	}
	f := b.Matrix().MulVec(h)
	vecmath.Scale(1/float64(b.Dim()), f)
	return f
}

// IterativeAnalytical refines the analytical estimate by error feedback:
//
//	F⁰   = decode(H)
//	Eᵗ   = decode(H − encode(Fᵗ))
//	Fᵗ⁺¹ = Fᵗ + λ·Eᵗ
//
// Each round removes part of the cross-talk the one-shot decoder leaves
// behind; λ < 1 keeps the fixed-point iteration contractive.
type IterativeAnalytical struct {
	Basis      *hdc.Basis
	Iterations int     // refinement rounds after the initial estimate
	Lambda     float64 // correction step, 0 < λ ≤ 1
}

// NewIterativeAnalytical returns the paper's iterative decoder with 10
// refinement rounds and a step chosen for guaranteed contraction: the
// iteration matrix is I − λ·(B·Bᵀ)/D, whose largest eigenvalue for a
// random ±1 basis approaches the Marchenko–Pastur edge (1 + √(n/D))², so
// any λ below 2/(1+√(n/D))² converges; we take half that bound. For
// n ≪ D this is ≈ 1 (fast), and it stays stable even at n ≈ D where the
// paper's "small constant λ" would otherwise diverge.
func NewIterativeAnalytical(b *hdc.Basis) IterativeAnalytical {
	edge := 1 + math.Sqrt(float64(b.Features())/float64(b.Dim()))
	return IterativeAnalytical{Basis: b, Iterations: 10, Lambda: 1 / (edge * edge)}
}

// Name implements Decoder.
func (it IterativeAnalytical) Name() string { return "iterative-analytical" }

// Decode implements Decoder.
func (it IterativeAnalytical) Decode(h []float64) []float64 {
	if it.Iterations < 0 || it.Lambda <= 0 {
		panic("decode: IterativeAnalytical misconfigured")
	}
	defer observeDecode(time.Now()) //pridlint:allow determinism wall-clock feeds obs timing only, never the numerics
	one := Analytical{Basis: it.Basis}
	f := one.Decode(h)
	reencoded := make([]float64, it.Basis.Dim())
	residual := make([]float64, it.Basis.Dim())
	for t := 0; t < it.Iterations; t++ {
		it.Basis.EncodeInto(reencoded, f)
		vecmath.SubInto(residual, h, reencoded)
		e := one.Decode(residual)
		vecmath.Axpy(it.Lambda, e, f)
	}
	return f
}

// LeastSquares is the closed-form learning-based decoder. Construction
// factors the n×n ridge Gram matrix once; Decode then costs one n×D
// mat-vec plus two triangular solves, so decoding many hypervectors
// against one basis (the common case: every class of every model, every
// attack iteration) amortizes the factorization.
type LeastSquares struct {
	basis *hdc.Basis
	chol  *vecmath.Cholesky
	ridge float64
}

// NewLeastSquares factors (B·Bᵀ + ridge·I). A small positive ridge keeps
// the system well conditioned when n approaches D; ridge 0 is exact
// ordinary least squares and is valid whenever the bases are linearly
// independent (essentially always for n < D).
func NewLeastSquares(b *hdc.Basis, ridge float64) (*LeastSquares, error) {
	if ridge < 0 {
		return nil, fmt.Errorf("decode: negative ridge %v", ridge)
	}
	span := obs.StartSpan("decode_factor")
	start := time.Now() //pridlint:allow determinism wall-clock feeds obs timing only, never the numerics
	defer func() {
		span.End()
		metricFactorRuns.Inc()
		metricFactorSecs.ObserveSince(start)
	}()
	// The n×n Gram build is the decoder's construction cost (n²·D/2
	// multiply-adds); fan it out across all cores — entries are the same
	// Dot calls in any schedule, so the factorization input is
	// bit-identical to the sequential build.
	gram := b.Matrix().GramParallel(0)
	if ridge > 0 {
		gram.AddDiagonal(ridge)
	}
	chol, err := vecmath.NewCholesky(gram)
	if err != nil {
		return nil, fmt.Errorf("decode: factoring ridge Gram matrix: %w", err)
	}
	return &LeastSquares{basis: b, chol: chol, ridge: ridge}, nil
}

// Name implements Decoder.
func (ls *LeastSquares) Name() string { return "learning-ls" }

// Decode implements Decoder.
func (ls *LeastSquares) Decode(h []float64) []float64 {
	if len(h) != ls.basis.Dim() {
		panic(fmt.Sprintf("decode: LeastSquares.Decode length %d, want %d", len(h), ls.basis.Dim()))
	}
	start := time.Now()                //pridlint:allow determinism wall-clock feeds obs timing only, never the numerics
	rhs := ls.basis.Matrix().MulVec(h) // B·H, length n
	out := ls.chol.Solve(rhs)
	observeDecode(start)
	return out
}

// SGD is the learning-based decoder exactly as the paper describes it: a
// linear regression trained by stochastic gradient descent, where each
// hypervector dimension j is a training sample with input
// (B_1j, ..., B_nj) and target h_j, and the trained weights are the decoded
// features. It converges to the LeastSquares solution (the problem is
// convex); it exists so the reproduction can report both routes and so the
// decoder works without an O(n²D) Gram pass when only one vector needs
// decoding.
type SGD struct {
	Basis  *hdc.Basis
	Config nn.RegressionConfig
}

// NewSGD returns an SGD decoder with defaults tuned for ±1 inputs: the
// per-dimension gradient scale is n, so the step size shrinks with n.
func NewSGD(b *hdc.Basis) SGD {
	cfg := nn.DefaultRegressionConfig()
	cfg.LearningRate = 0.5 / float64(b.Features())
	cfg.Epochs = 20
	return SGD{Basis: b, Config: cfg}
}

// Name implements Decoder.
func (s SGD) Name() string { return "learning-sgd" }

// Decode implements Decoder.
func (s SGD) Decode(h []float64) []float64 {
	b := s.Basis
	if len(h) != b.Dim() {
		panic(fmt.Sprintf("decode: SGD.Decode length %d, want %d", len(h), b.Dim()))
	}
	defer observeDecode(time.Now()) //pridlint:allow determinism wall-clock feeds obs timing only, never the numerics
	n, d := b.Features(), b.Dim()
	// Column-major view of the basis: sample j is the j-th element of every
	// base hypervector.
	xs := make([][]float64, d)
	ys := make([][]float64, d)
	for j := 0; j < d; j++ {
		col := make([]float64, n)
		for k := 0; k < n; k++ {
			col[k] = b.Row(k)[j]
		}
		xs[j] = col
		ys[j] = []float64{h[j]}
	}
	net := buildRegressionNet(n)
	nn.FitRegression(net, xs, ys, s.Config)
	dense := net.Layers[0].(*nn.Dense)
	return vecmath.Clone(dense.W.Row(0))
}

// buildRegressionNet builds the single-layer regression network whose
// weight row is the decoded feature vector. Weights start at zero (not
// random) so the recovered features carry no initialization noise.
func buildRegressionNet(n int) *nn.Network {
	d := nn.NewDense(n, 1, rng.New(0))
	vecmath.Zero(d.W.Data)
	return nn.NewNetwork(d)
}

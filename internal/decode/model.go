package decode

import (
	"math"

	"prid/internal/hdc"
	"prid/internal/rng"
	"prid/internal/vecmath"
)

// Classes decodes every class hypervector of m back to feature space. A
// class hypervector is the (retrained) sum of its training encodings, and
// encoding is linear, so decoding a class recovers the *sum* of the train
// features of that class; when normalize is true each decoded class is
// divided by its bundle count, yielding the per-class mean train sample —
// the "general shape of the train data" the paper shows (e.g. the shape of
// the zero digit on MNIST).
//
// Classes with a zero bundle count (possible for models built directly via
// SetClass) are left unscaled.
func Classes(dec Decoder, m *hdc.Model, normalize bool) [][]float64 {
	out := make([][]float64, m.NumClasses())
	for l := 0; l < m.NumClasses(); l++ {
		f := dec.Decode(m.Class(l))
		if normalize && m.Count(l) > 0 {
			vecmath.Scale(1/float64(m.Count(l)), f)
		}
		out[l] = f
	}
	return out
}

// AddGaussianNoise adds zero-mean Gaussian noise to h whose standard
// deviation is fraction × the RMS magnitude of h, in place. This is the
// "p% Gaussian noise" protocol of the paper's Figure 1 (PRIVE-HD-style
// noise on the encoded sample): fraction 0.2 reproduces the 20% setting.
// It returns the noise standard deviation used.
func AddGaussianNoise(h []float64, fraction float64, src *rng.Source) float64 {
	if fraction < 0 {
		panic("decode: negative noise fraction")
	}
	if fraction == 0 || len(h) == 0 { //pridlint:allow floateq exact zero fast path: fraction 0 must add no noise at all
		return 0
	}
	var energy float64
	for _, v := range h {
		energy += v * v
	}
	sigma := fraction * math.Sqrt(energy/float64(len(h)))
	for i := range h {
		h[i] += src.Gaussian(0, sigma)
	}
	return sigma
}

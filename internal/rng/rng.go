// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the PRID reproduction.
//
// The generator is xoshiro256++ seeded through splitmix64. It is implemented
// locally (rather than using math/rand) so that every experiment in the
// repository produces bit-identical streams across Go versions and
// platforms, and so that independent sub-streams can be split off cheaply
// for parallel or per-component use (one stream per basis, per dataset, per
// defense iteration, ...).
//
// None of the methods are safe for concurrent use on the same *Source;
// split a child with Split and hand each goroutine its own.
package rng

import "math"

// Source is a deterministic pseudo-random source. The zero value is not
// usable; construct one with New.
type Source struct {
	s [4]uint64

	// Marsaglia polar method cache: the method produces variates in pairs,
	// so the second of each pair is held here for the next Norm call.
	haveSpare bool
	spare     float64
}

// splitmix64 advances a 64-bit state and returns the next output. It is the
// seeding generator recommended by the xoshiro authors: it guarantees the
// xoshiro state is well mixed even for small or similar seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Two Sources built from the same
// seed produce identical streams.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed resets the Source to the stream determined by seed, clearing any
// cached normal variate so the stream is fully determined by the seed.
func (r *Source) Reseed(seed uint64) {
	r.haveSpare = false
	r.spare = 0
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// A state of all zeros is the one fixed point of xoshiro; splitmix64
	// cannot produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split derives an independent child stream from the current state. The
// parent advances, so successive Splits yield distinct children. The child
// is decorrelated from the parent by re-mixing through splitmix64.
func (r *Source) Split() *Source {
	seed := r.Uint64() ^ 0xd3833e804f4c574b
	return New(seed)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0. Lemire's
// multiply-shift rejection method avoids modulo bias.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= -bound%bound {
			// -bound%bound == (2^64 - bound) mod bound: the threshold under
			// which results would be biased.
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	ll := aLo * bLo
	lh := aLo * bHi
	hl := aHi * bLo
	hh := aHi * bHi
	mid := lh&mask + hl&mask + ll>>32
	hi = hh + lh>>32 + hl>>32 + mid>>32
	lo = mid<<32 | ll&mask
	return hi, lo
}

// Norm returns a standard normal variate (mean 0, variance 1) using the
// Marsaglia polar method. Spare values are cached between calls.
func (r *Source) Norm() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 { //pridlint:allow floateq exact rejection test of the Marsaglia polar method
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// Gaussian returns a normal variate with the given mean and standard
// deviation.
func (r *Source) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Rademacher returns -1 or +1 with equal probability.
func (r *Source) Rademacher() float64 {
	if r.Uint64()&1 == 0 {
		return 1
	}
	return -1
}

// Bernoulli returns true with probability p.
func (r *Source) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place.
func (r *Source) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// FillNorm fills dst with independent standard normal variates.
func (r *Source) FillNorm(dst []float64) {
	for i := range dst {
		dst[i] = r.Norm()
	}
}

// FillUniform fills dst with independent uniforms in [lo, hi).
func (r *Source) FillUniform(dst []float64, lo, hi float64) {
	for i := range dst {
		dst[i] = r.Uniform(lo, hi)
	}
}

// FillRademacher fills dst with independent ±1 values.
func (r *Source) FillRademacher(dst []float64) {
	for i := range dst {
		dst[i] = r.Rademacher()
	}
}

// Sample draws k distinct indices from [0, n) without replacement, in
// random order. It panics if k > n or k < 0.
func (r *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample k out of range")
	}
	// Partial Fisher–Yates: only the first k slots are settled.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestReseedRestoresStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 100)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Norm() // populate the spare cache
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed, step %d: got %d want %d", i, got, first[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(3)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("successive Split children produced identical first draws")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(12)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(14)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v beyond 5 sigma", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(15)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestGaussianShiftScale(t *testing.T) {
	r := New(16)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Gaussian(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Fatalf("Gaussian(5,2) mean %v too far from 5", mean)
	}
}

func TestRademacher(t *testing.T) {
	r := New(17)
	const n = 100000
	pos := 0
	for i := 0; i < n; i++ {
		v := r.Rademacher()
		if v != 1 && v != -1 {
			t.Fatalf("Rademacher returned %v", v)
		}
		if v == 1 {
			pos++
		}
	}
	if math.Abs(float64(pos)/n-0.5) > 0.01 {
		t.Fatalf("Rademacher positive fraction %v too far from 0.5", float64(pos)/n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(18)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(19)
	s := r.Sample(50, 20)
	if len(s) != 20 {
		t.Fatalf("Sample length %d, want 20", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Sample invalid element %d in %v", v, s)
		}
		seen[v] = true
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestUniformRange(t *testing.T) {
	r := New(20)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform(-3,7) out of range: %v", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(21)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestFillHelpers(t *testing.T) {
	r := New(22)
	norm := make([]float64, 64)
	r.FillNorm(norm)
	allZero := true
	for _, v := range norm {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("FillNorm left slice all zero")
	}
	rad := make([]float64, 64)
	r.FillRademacher(rad)
	for _, v := range rad {
		if v != 1 && v != -1 {
			t.Fatalf("FillRademacher produced %v", v)
		}
	}
	uni := make([]float64, 64)
	r.FillUniform(uni, 2, 3)
	for _, v := range uni {
		if v < 2 || v >= 3 {
			t.Fatalf("FillUniform produced %v outside [2,3)", v)
		}
	}
}

// Property: mul128 agrees with big-integer multiplication decomposed through
// math/bits-free arithmetic, checked via the identity (a*b) mod 2^64 == lo.
func TestMul128LowWord(t *testing.T) {
	f := func(a, b uint64) bool {
		_, lo := mul128(a, b)
		return lo == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for small operands the full product fits in 64 bits, so hi must
// be zero and lo the exact product.
func TestMul128SmallOperands(t *testing.T) {
	f := func(a32, b32 uint32) bool {
		hi, lo := mul128(uint64(a32), uint64(b32))
		return hi == 0 && lo == uint64(a32)*uint64(b32)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Perm output sorted equals the identity.
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 64)
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Norm()
	}
	_ = sink
}

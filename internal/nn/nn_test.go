package nn

import (
	"math"
	"testing"
	"testing/quick"

	"prid/internal/rng"
	"prid/internal/vecmath"
)

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense(2, 2, rng.New(1))
	copy(d.W.Data, []float64{1, 2, 3, 4}) // rows: [1 2], [3 4]
	copy(d.B, []float64{10, 20})
	out := d.Forward([]float64{1, 1})
	if out[0] != 13 || out[1] != 27 {
		t.Fatalf("Forward = %v", out)
	}
}

// Gradient check: compare Backward's analytic gradients against central
// finite differences for a two-layer network with Tanh.
func TestGradientCheck(t *testing.T) {
	src := rng.New(2)
	net := NewNetwork(NewDense(3, 4, src), &Tanh{}, NewDense(4, 2, src))
	x := []float64{0.3, -0.7, 0.5}
	target := []float64{0.2, -0.4}

	lossAt := func() float64 {
		loss, _ := MSELoss(net.Forward(x), target)
		return loss
	}

	// Analytic gradients.
	pred := net.Forward(x)
	_, grad := MSELoss(pred, target)
	net.Backward(grad)

	const eps = 1e-6
	check := func(name string, params, grads []float64) {
		for i := range params {
			orig := params[i]
			params[i] = orig + eps
			up := lossAt()
			params[i] = orig - eps
			down := lossAt()
			params[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-grads[i]) > 1e-5*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, i, grads[i], numeric)
			}
		}
	}
	l0 := net.Layers[0].(*Dense)
	l2 := net.Layers[2].(*Dense)
	check("W0", l0.W.Data, l0.gradW.Data)
	check("b0", l0.B, l0.gradB)
	check("W2", l2.W.Data, l2.gradW.Data)
	check("b2", l2.B, l2.gradB)
}

func TestDenseInputGradient(t *testing.T) {
	// Input gradient check via finite differences.
	src := rng.New(3)
	d := NewDense(3, 2, src)
	x := []float64{0.1, 0.2, 0.3}
	target := []float64{1, -1}
	pred := d.Forward(x)
	_, g := MSELoss(pred, target)
	gin := d.Backward(g)
	const eps = 1e-6
	for i := range x {
		xp := vecmath.Clone(x)
		xm := vecmath.Clone(x)
		xp[i] += eps
		xm[i] -= eps
		lp, _ := MSELoss(d.Forward(xp), target)
		lm, _ := MSELoss(d.Forward(xm), target)
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-gin[i]) > 1e-6 {
			t.Fatalf("input grad[%d]: analytic %v vs numeric %v", i, gin[i], numeric)
		}
	}
}

func TestStepClearsGradients(t *testing.T) {
	d := NewDense(2, 2, rng.New(4))
	pred := d.Forward([]float64{1, 2})
	_, g := MSELoss(pred, []float64{0, 0})
	d.Backward(g)
	d.Step(0.1)
	for _, v := range d.gradW.Data {
		if v != 0 {
			t.Fatal("Step did not clear weight gradients")
		}
	}
	for _, v := range d.gradB {
		if v != 0 {
			t.Fatal("Step did not clear bias gradients")
		}
	}
}

func TestReLU(t *testing.T) {
	r := &ReLU{}
	out := r.Forward([]float64{-1, 0, 2})
	if out[0] != 0 || out[1] != 0 || out[2] != 2 {
		t.Fatalf("ReLU forward = %v", out)
	}
	back := r.Backward([]float64{5, 5, 5})
	if back[0] != 0 || back[1] != 0 || back[2] != 5 {
		t.Fatalf("ReLU backward = %v", back)
	}
}

func TestTanhRange(t *testing.T) {
	th := &Tanh{}
	out := th.Forward([]float64{-100, 0, 100})
	if math.Abs(out[0]+1) > 1e-9 || out[1] != 0 || math.Abs(out[2]-1) > 1e-9 {
		t.Fatalf("Tanh forward = %v", out)
	}
}

func TestMSELossZero(t *testing.T) {
	loss, grad := MSELoss([]float64{1, 2}, []float64{1, 2})
	if loss != 0 {
		t.Fatalf("loss = %v", loss)
	}
	if grad[0] != 0 || grad[1] != 0 {
		t.Fatalf("grad = %v", grad)
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 4 classes → loss = ln 4.
	loss, grad := SoftmaxCrossEntropy([]float64{0, 0, 0, 0}, 2)
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("loss = %v, want ln4", loss)
	}
	if math.Abs(grad[2]-(0.25-1)) > 1e-12 || math.Abs(grad[0]-0.25) > 1e-12 {
		t.Fatalf("grad = %v", grad)
	}
}

func TestSoftmaxStability(t *testing.T) {
	// Huge logits must not overflow.
	p := Softmax([]float64{1000, 999, 998})
	sum := p[0] + p[1] + p[2]
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sums to %v", sum)
	}
	if p[0] <= p[1] || p[1] <= p[2] {
		t.Fatalf("softmax ordering wrong: %v", p)
	}
}

// Property: softmax output is a probability vector for any finite logits.
func TestSoftmaxProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(10)
		logits := make([]float64, n)
		r.FillUniform(logits, -50, 50)
		p := Softmax(logits)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFitRegressionLearnsLinearMap(t *testing.T) {
	// Ground truth: y = A·x with a fixed random A. A single Dense layer
	// must recover it (convex problem).
	src := rng.New(5)
	const in, out, samples = 4, 3, 200
	a := vecmath.NewMatrix(out, in)
	src.FillNorm(a.Data)
	var xs, ys [][]float64
	for i := 0; i < samples; i++ {
		x := make([]float64, in)
		src.FillNorm(x)
		xs = append(xs, x)
		ys = append(ys, a.MulVec(x))
	}
	net := NewNetwork(NewDense(in, out, src.Split()))
	cfg := RegressionConfig{Epochs: 60, LearningRate: 0.05, Shuffle: true, Seed: 7}
	final := FitRegression(net, xs, ys, cfg)
	if final > 1e-4 {
		t.Fatalf("final regression loss %v, want < 1e-4", final)
	}
	w := net.Layers[0].(*Dense).W
	if mse := vecmath.MSE(w.Data, a.Data); mse > 1e-3 {
		t.Fatalf("recovered weights MSE %v from ground truth", mse)
	}
}

func TestFitClassifierLearnsSeparableData(t *testing.T) {
	src := rng.New(6)
	const n, perClass = 6, 50
	var xs [][]float64
	var ys []int
	for class := 0; class < 3; class++ {
		center := make([]float64, n)
		src.FillUniform(center, -3, 3)
		for i := 0; i < perClass; i++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = center[j] + src.Gaussian(0, 0.3)
			}
			xs = append(xs, x)
			ys = append(ys, class)
		}
	}
	net := NewNetwork(NewDense(n, 16, src.Split()), &ReLU{}, NewDense(16, 3, src.Split()))
	FitClassifier(net, xs, ys, ClassifierConfig{Epochs: 40, LearningRate: 0.05, Seed: 8})
	if acc := ClassifierAccuracy(net, xs, ys); acc < 0.95 {
		t.Fatalf("classifier accuracy %v on separable data", acc)
	}
}

func TestClassifierAccuracyEmpty(t *testing.T) {
	net := NewNetwork(NewDense(2, 2, rng.New(9)))
	if ClassifierAccuracy(net, nil, nil) != 0 {
		t.Fatal("accuracy on empty set should be 0")
	}
}

func TestPanics(t *testing.T) {
	src := rng.New(10)
	d := NewDense(2, 3, src)
	mustPanic(t, "NewDense(0, 1)", func() { NewDense(0, 1, src) })
	mustPanic(t, "Forward wrong length", func() { d.Forward([]float64{1}) })
	mustPanic(t, "Backward before Forward", func() { NewDense(2, 2, src).Backward([]float64{1, 1}) })
	mustPanic(t, "MSELoss mismatch", func() { MSELoss([]float64{1}, []float64{1, 2}) })
	mustPanic(t, "SCE label range", func() { SoftmaxCrossEntropy([]float64{1, 2}, 5) })
	mustPanic(t, "FitRegression mismatch", func() {
		FitRegression(NewNetwork(), [][]float64{{1}}, nil, DefaultRegressionConfig())
	})
	mustPanic(t, "FitRegression zero epochs", func() {
		FitRegression(NewNetwork(), nil, nil, RegressionConfig{})
	})
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	f()
}

func BenchmarkDenseForward256x256(b *testing.B) {
	src := rng.New(1)
	d := NewDense(256, 256, src)
	x := make([]float64, 256)
	src.FillNorm(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Forward(x)
	}
}

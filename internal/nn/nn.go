// Package nn is a minimal dense neural-network library: fully connected
// layers, pointwise activations, MSE and softmax-cross-entropy losses, and
// plain SGD. It exists for two roles in the PRID reproduction:
//
//   - the paper's learning-based decoder, a single-layer regression network
//     trained to map base hypervectors to an encoded hypervector, whose
//     trained weights are the decoded features (Section III-A);
//   - the DNN comparator of Table I (an MLP classifier in
//     internal/baseline).
//
// Training operates one sample at a time (stochastic, not mini-batched
// matrices); at the scale of this reproduction that is simpler and fast
// enough.
package nn

import (
	"fmt"
	"math"

	"prid/internal/rng"
	"prid/internal/vecmath"
)

// Layer is one differentiable stage of a Network. Forward must be called
// before Backward for the same sample; Backward accumulates parameter
// gradients that Step later applies and clears.
type Layer interface {
	// Forward computes the layer output for input x.
	Forward(x []float64) []float64
	// Backward consumes the gradient of the loss with respect to the
	// layer's output and returns the gradient with respect to its input.
	Backward(gradOut []float64) []float64
	// Step applies accumulated parameter gradients scaled by -lr and
	// clears them. Layers without parameters do nothing.
	Step(lr float64)
}

// Dense is a fully connected layer: out = W·x + b, with W out×in.
type Dense struct {
	In, Out int
	W       *vecmath.Matrix // Out×In
	B       []float64

	lastIn []float64
	gradW  *vecmath.Matrix
	gradB  []float64
}

// NewDense constructs a Dense layer with Glorot-uniform initial weights
// drawn from src and zero biases.
func NewDense(in, out int, src *rng.Source) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: NewDense with non-positive size in=%d out=%d", in, out))
	}
	d := &Dense{
		In:    in,
		Out:   out,
		W:     vecmath.NewMatrix(out, in),
		B:     make([]float64, out),
		gradW: vecmath.NewMatrix(out, in),
		gradB: make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	src.FillUniform(d.W.Data, -limit, limit)
	return d
}

// Forward computes W·x + b and caches x for Backward.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: Dense.Forward input length %d, want %d", len(x), d.In))
	}
	d.lastIn = x
	out := d.W.MulVec(x)
	for i := range out {
		out[i] += d.B[i]
	}
	return out
}

// Backward accumulates ∂L/∂W = g·xᵀ and ∂L/∂b = g, returning Wᵀ·g.
func (d *Dense) Backward(gradOut []float64) []float64 {
	if len(gradOut) != d.Out {
		panic(fmt.Sprintf("nn: Dense.Backward gradient length %d, want %d", len(gradOut), d.Out))
	}
	if d.lastIn == nil {
		panic("nn: Dense.Backward before Forward")
	}
	for i, g := range gradOut {
		if g == 0 { //pridlint:allow floateq exact sparsity skip: a zero gradient contributes exactly nothing
			continue
		}
		vecmath.Axpy(g, d.lastIn, d.gradW.Row(i))
		d.gradB[i] += g
	}
	return d.W.MulVecT(gradOut)
}

// Step applies W -= lr·gradW, b -= lr·gradB and clears the gradients.
func (d *Dense) Step(lr float64) {
	vecmath.Axpy(-lr, d.gradW.Data, d.W.Data)
	vecmath.Axpy(-lr, d.gradB, d.B)
	vecmath.Zero(d.gradW.Data)
	vecmath.Zero(d.gradB)
}

// ReLU is the rectified linear activation.
type ReLU struct {
	lastIn []float64
}

// Forward returns max(x, 0) elementwise.
func (r *ReLU) Forward(x []float64) []float64 {
	r.lastIn = x
	out := make([]float64, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
		}
	}
	return out
}

// Backward passes gradients through where the input was positive.
func (r *ReLU) Backward(gradOut []float64) []float64 {
	if r.lastIn == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	in := make([]float64, len(gradOut))
	for i, g := range gradOut {
		if r.lastIn[i] > 0 {
			in[i] = g
		}
	}
	return in
}

// Step is a no-op: ReLU has no parameters.
func (r *ReLU) Step(lr float64) {}

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	lastOut []float64
}

// Forward returns tanh(x) elementwise.
func (t *Tanh) Forward(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = math.Tanh(v)
	}
	t.lastOut = out
	return out
}

// Backward multiplies by 1 − tanh².
func (t *Tanh) Backward(gradOut []float64) []float64 {
	if t.lastOut == nil {
		panic("nn: Tanh.Backward before Forward")
	}
	in := make([]float64, len(gradOut))
	for i, g := range gradOut {
		y := t.lastOut[i]
		in[i] = g * (1 - y*y)
	}
	return in
}

// Step is a no-op: Tanh has no parameters.
func (t *Tanh) Step(lr float64) {}

// Network chains layers.
type Network struct {
	Layers []Layer
}

// NewNetwork builds a network from the given layers in order.
func NewNetwork(layers ...Layer) *Network {
	return &Network{Layers: layers}
}

// Forward runs x through every layer.
func (n *Network) Forward(x []float64) []float64 {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates the output gradient back through every layer,
// accumulating parameter gradients.
func (n *Network) Backward(gradOut []float64) []float64 {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		gradOut = n.Layers[i].Backward(gradOut)
	}
	return gradOut
}

// Step applies and clears accumulated gradients on every layer.
func (n *Network) Step(lr float64) {
	for _, l := range n.Layers {
		l.Step(lr)
	}
}

// MSELoss returns ½·mean((pred−target)²) and its gradient with respect to
// pred.
func MSELoss(pred, target []float64) (float64, []float64) {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("nn: MSELoss length mismatch %d vs %d", len(pred), len(target)))
	}
	grad := make([]float64, len(pred))
	var loss float64
	scale := 1 / float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		loss += 0.5 * d * d * scale
		grad[i] = d * scale
	}
	return loss, grad
}

// SoftmaxCrossEntropy returns the cross-entropy of softmax(logits) against
// the integer label and the gradient with respect to the logits
// (softmax − onehot). The log-sum-exp is computed stably.
func SoftmaxCrossEntropy(logits []float64, label int) (float64, []float64) {
	if label < 0 || label >= len(logits) {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy label %d out of range %d", label, len(logits)))
	}
	maxv := logits[vecmath.ArgMax(logits)]
	var sum float64
	grad := make([]float64, len(logits))
	for i, v := range logits {
		e := math.Exp(v - maxv)
		grad[i] = e
		sum += e
	}
	loss := math.Log(sum) - (logits[label] - maxv)
	for i := range grad {
		grad[i] /= sum
	}
	grad[label] -= 1
	return loss, grad
}

// Softmax returns the softmax of logits, computed stably.
func Softmax(logits []float64) []float64 {
	maxv := logits[vecmath.ArgMax(logits)]
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - maxv)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

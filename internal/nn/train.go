package nn

import (
	"fmt"

	"prid/internal/rng"
	"prid/internal/vecmath"
)

// RegressionConfig controls FitRegression.
type RegressionConfig struct {
	Epochs       int     // full passes over the data
	LearningRate float64 // SGD step size
	Shuffle      bool    // reshuffle sample order each epoch
	Seed         uint64  // shuffle stream seed
}

// DefaultRegressionConfig returns the settings used by the learning-based
// decoder: enough epochs to converge on the (convex) linear regression it
// solves, with per-epoch shuffling.
func DefaultRegressionConfig() RegressionConfig {
	return RegressionConfig{Epochs: 30, LearningRate: 0.05, Shuffle: true, Seed: 1}
}

// FitRegression trains net to map each x[i] to target[i] under MSE loss by
// plain SGD and returns the mean loss of the final epoch.
func FitRegression(net *Network, x, target [][]float64, cfg RegressionConfig) float64 {
	if len(x) != len(target) {
		panic(fmt.Sprintf("nn: FitRegression with %d inputs but %d targets", len(x), len(target)))
	}
	if cfg.Epochs <= 0 {
		panic("nn: FitRegression with non-positive epochs")
	}
	src := rng.New(cfg.Seed)
	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}
	var lastEpochLoss float64
	for e := 0; e < cfg.Epochs; e++ {
		if cfg.Shuffle {
			src.Shuffle(order)
		}
		var w vecmath.Welford
		for _, i := range order {
			pred := net.Forward(x[i])
			loss, grad := MSELoss(pred, target[i])
			net.Backward(grad)
			net.Step(cfg.LearningRate)
			w.Add(loss)
		}
		lastEpochLoss = w.Mean()
	}
	return lastEpochLoss
}

// ClassifierConfig controls FitClassifier.
type ClassifierConfig struct {
	Epochs       int
	LearningRate float64
	Seed         uint64
}

// FitClassifier trains net as a softmax classifier over integer labels by
// SGD and returns the final-epoch mean cross-entropy.
func FitClassifier(net *Network, x [][]float64, y []int, cfg ClassifierConfig) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("nn: FitClassifier with %d inputs but %d labels", len(x), len(y)))
	}
	if cfg.Epochs <= 0 {
		panic("nn: FitClassifier with non-positive epochs")
	}
	src := rng.New(cfg.Seed)
	order := make([]int, len(x))
	for i := range order {
		order[i] = i
	}
	var lastEpochLoss float64
	for e := 0; e < cfg.Epochs; e++ {
		src.Shuffle(order)
		var w vecmath.Welford
		for _, i := range order {
			logits := net.Forward(x[i])
			loss, grad := SoftmaxCrossEntropy(logits, y[i])
			net.Backward(grad)
			net.Step(cfg.LearningRate)
			w.Add(loss)
		}
		lastEpochLoss = w.Mean()
	}
	return lastEpochLoss
}

// Predict returns the argmax class of net's logits for x.
func Predict(net *Network, x []float64) int {
	return vecmath.ArgMax(net.Forward(x))
}

// ClassifierAccuracy returns the fraction of samples net classifies
// correctly.
func ClassifierAccuracy(net *Network, x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	correct := 0
	for i := range x {
		if Predict(net, x[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

package baseline

import (
	"fmt"
	"math"
	"sort"
)

// stump is a one-feature threshold weak learner: predicts +1 when
// polarity*(x[feature] − threshold) > 0, else −1.
type stump struct {
	feature   int
	threshold float64
	polarity  float64 // +1 or −1
	alpha     float64 // weight in the ensemble
}

func (s stump) predict(x []float64) float64 {
	if s.polarity*(x[s.feature]-s.threshold) > 0 {
		return 1
	}
	return -1
}

// AdaBoost is a multiclass classifier built from one-vs-rest binary
// AdaBoost ensembles of decision stumps (SAMME-style reduction). It is the
// paper's comparator for the FACE and EXTRA datasets.
type AdaBoost struct {
	classes   int
	ensembles [][]stump // one ensemble of stumps per class
}

// AdaBoostConfig controls TrainAdaBoost.
type AdaBoostConfig struct {
	// Rounds is the number of stumps per one-vs-rest ensemble.
	Rounds int
	// Thresholds is the number of candidate split points tried per feature
	// (quantiles of the feature's values).
	Thresholds int
}

// DefaultAdaBoostConfig is sized for the quick synthetic datasets.
func DefaultAdaBoostConfig() AdaBoostConfig {
	return AdaBoostConfig{Rounds: 40, Thresholds: 8}
}

// TrainAdaBoost fits one-vs-rest boosted stumps on the labeled set.
func TrainAdaBoost(x [][]float64, y []int, classes int, cfg AdaBoostConfig) *AdaBoost {
	if len(x) == 0 || len(x) != len(y) {
		panic(fmt.Sprintf("baseline: TrainAdaBoost with %d samples, %d labels", len(x), len(y)))
	}
	if cfg.Rounds < 1 || cfg.Thresholds < 1 {
		panic("baseline: TrainAdaBoost misconfigured")
	}
	ab := &AdaBoost{classes: classes, ensembles: make([][]stump, classes)}
	for c := 0; c < classes; c++ {
		target := make([]float64, len(y))
		for i, yi := range y {
			if yi == c {
				target[i] = 1
			} else {
				target[i] = -1
			}
		}
		ab.ensembles[c] = boostBinary(x, target, cfg)
	}
	return ab
}

// boostBinary runs standard binary AdaBoost with stumps against ±1 targets.
func boostBinary(x [][]float64, target []float64, cfg AdaBoostConfig) []stump {
	m := len(x)
	n := len(x[0])
	w := make([]float64, m)
	for i := range w {
		w[i] = 1 / float64(m)
	}
	candidates := thresholdCandidates(x, n, cfg.Thresholds)
	var ensemble []stump
	for round := 0; round < cfg.Rounds; round++ {
		best, bestErr := bestStump(x, target, w, candidates)
		if bestErr >= 0.5 {
			break // no weak learner better than chance remains
		}
		eps := math.Max(bestErr, 1e-10)
		best.alpha = 0.5 * math.Log((1-eps)/eps)
		ensemble = append(ensemble, best)
		// Reweight: mistakes gain weight, hits lose it.
		var sum float64
		for i := range w {
			w[i] *= math.Exp(-best.alpha * target[i] * best.predict(x[i]))
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		if bestErr < 1e-9 {
			break // perfect stump; further rounds add nothing
		}
	}
	return ensemble
}

// thresholdCandidates returns per-feature candidate thresholds at the
// quantiles of the observed values.
func thresholdCandidates(x [][]float64, n, per int) [][]float64 {
	out := make([][]float64, n)
	vals := make([]float64, len(x))
	for f := 0; f < n; f++ {
		for i := range x {
			vals[i] = x[i][f]
		}
		sort.Float64s(vals)
		cands := make([]float64, 0, per)
		for t := 1; t <= per; t++ {
			idx := t * (len(vals) - 1) / (per + 1)
			cands = append(cands, vals[idx])
		}
		out[f] = cands
	}
	return out
}

// bestStump scans every (feature, threshold, polarity) candidate for the
// lowest weighted error.
func bestStump(x [][]float64, target, w []float64, candidates [][]float64) (stump, float64) {
	best := stump{polarity: 1}
	bestErr := math.Inf(1)
	for f := range candidates {
		for _, thr := range candidates[f] {
			// Error with polarity +1; polarity −1 is its complement.
			var errPos float64
			for i := range x {
				pred := -1.0
				if x[i][f]-thr > 0 {
					pred = 1
				}
				if pred != target[i] { //pridlint:allow floateq compares exact ±1 sentinel labels, not measured values
					errPos += w[i]
				}
			}
			if errPos < bestErr {
				best = stump{feature: f, threshold: thr, polarity: 1}
				bestErr = errPos
			}
			if errNeg := 1 - errPos; errNeg < bestErr {
				best = stump{feature: f, threshold: thr, polarity: -1}
				bestErr = errNeg
			}
		}
	}
	return best, bestErr
}

// Predict implements Classifier: the class whose ensemble produces the
// highest weighted margin.
func (a *AdaBoost) Predict(x []float64) int {
	bestClass, bestScore := 0, math.Inf(-1)
	for c, ens := range a.ensembles {
		var score float64
		for _, s := range ens {
			score += s.alpha * s.predict(x)
		}
		if score > bestScore {
			bestClass, bestScore = c, score
		}
	}
	return bestClass
}

// Name implements Classifier.
func (a *AdaBoost) Name() string { return "AdaBoost" }

// Rounds returns the ensemble sizes actually fitted per class (boosting can
// stop early on perfect or exhausted weak learners).
func (a *AdaBoost) Rounds() []int {
	out := make([]int, len(a.ensembles))
	for i, e := range a.ensembles {
		out[i] = len(e)
	}
	return out
}

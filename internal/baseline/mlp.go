// Package baseline implements the non-HDC comparators of the paper's
// Table I: a dense MLP classifier (the "DNN" entries) and AdaBoost over
// decision stumps (the "AdaBoost" entries). Both are deliberately modest —
// their role is to anchor the "HDC is within 0.2% of the state of the art
// on average" comparison, not to chase benchmark records.
package baseline

import (
	"fmt"

	"prid/internal/nn"
	"prid/internal/rng"
)

// Classifier is the common face of the comparators.
type Classifier interface {
	// Predict returns the class of one feature vector.
	Predict(x []float64) int
	// Name identifies the comparator in Table I output.
	Name() string
}

// Accuracy scores a classifier on a labeled set.
func Accuracy(c Classifier, x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return 0
	}
	correct := 0
	for i := range x {
		if c.Predict(x[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

// MLP is a one-hidden-layer ReLU network classifier.
type MLP struct {
	net *nn.Network
}

// MLPConfig controls TrainMLP.
type MLPConfig struct {
	Hidden       int
	Epochs       int
	LearningRate float64
	Seed         uint64
}

// DefaultMLPConfig is sized for the quick synthetic datasets.
func DefaultMLPConfig() MLPConfig {
	return MLPConfig{Hidden: 64, Epochs: 30, LearningRate: 0.02, Seed: 0xD1}
}

// TrainMLP fits an MLP classifier on the labeled set.
func TrainMLP(x [][]float64, y []int, classes int, cfg MLPConfig) *MLP {
	if len(x) == 0 || len(x) != len(y) {
		panic(fmt.Sprintf("baseline: TrainMLP with %d samples, %d labels", len(x), len(y)))
	}
	if cfg.Hidden < 1 || cfg.Epochs < 1 {
		panic("baseline: TrainMLP misconfigured")
	}
	src := rng.New(cfg.Seed)
	net := nn.NewNetwork(
		nn.NewDense(len(x[0]), cfg.Hidden, src),
		&nn.ReLU{},
		nn.NewDense(cfg.Hidden, classes, src),
	)
	nn.FitClassifier(net, x, y, nn.ClassifierConfig{
		Epochs:       cfg.Epochs,
		LearningRate: cfg.LearningRate,
		Seed:         cfg.Seed + 1,
	})
	return &MLP{net: net}
}

// Predict implements Classifier.
func (m *MLP) Predict(x []float64) int { return nn.Predict(m.net, x) }

// Name implements Classifier.
func (m *MLP) Name() string { return "DNN" }

package baseline

import (
	"testing"

	"prid/internal/dataset"
	"prid/internal/rng"
	"prid/internal/vecmath"
)

// blobs builds an easy k-class Gaussian problem.
func blobs(n, k, perClass int, spread float64, seed uint64) (x [][]float64, y []int) {
	src := rng.New(seed)
	centers := make([][]float64, k)
	for c := range centers {
		v := make([]float64, n)
		src.FillUniform(v, 0, 1)
		centers[c] = v
	}
	for c := 0; c < k; c++ {
		for i := 0; i < perClass; i++ {
			s := vecmath.Clone(centers[c])
			for j := range s {
				s[j] += src.Gaussian(0, spread)
			}
			x = append(x, s)
			y = append(y, c)
		}
	}
	return x, y
}

func TestMLPLearnsBlobs(t *testing.T) {
	x, y := blobs(10, 3, 40, 0.05, 1)
	m := TrainMLP(x, y, 3, DefaultMLPConfig())
	if acc := Accuracy(m, x, y); acc < 0.95 {
		t.Fatalf("MLP train accuracy %.3f on easy blobs", acc)
	}
	if m.Name() != "DNN" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestAdaBoostLearnsBlobs(t *testing.T) {
	x, y := blobs(10, 3, 40, 0.05, 2)
	a := TrainAdaBoost(x, y, 3, DefaultAdaBoostConfig())
	if acc := Accuracy(a, x, y); acc < 0.9 {
		t.Fatalf("AdaBoost train accuracy %.3f on easy blobs", acc)
	}
	if a.Name() != "AdaBoost" {
		t.Fatalf("Name = %q", a.Name())
	}
	for _, r := range a.Rounds() {
		if r < 1 {
			t.Fatal("an ensemble fitted zero stumps")
		}
	}
}

func TestAdaBoostBinarySeparable(t *testing.T) {
	// A single threshold on feature 0 separates the classes; boosting must
	// nail it.
	x := [][]float64{{0.1, 0.5}, {0.2, 0.4}, {0.3, 0.9}, {0.7, 0.1}, {0.8, 0.6}, {0.9, 0.3}}
	y := []int{0, 0, 0, 1, 1, 1}
	a := TrainAdaBoost(x, y, 2, AdaBoostConfig{Rounds: 10, Thresholds: 5})
	if acc := Accuracy(a, x, y); acc != 1 {
		t.Fatalf("AdaBoost accuracy %.3f on threshold-separable data", acc)
	}
}

func TestComparatorsOnSyntheticDatasets(t *testing.T) {
	// Both comparators must beat chance comfortably on the Table I
	// stand-ins they are assigned to.
	if testing.Short() {
		t.Skip("comparator sweep is slow")
	}
	for _, name := range []string{"ACTIVITY", "EXTRA"} {
		ds := dataset.MustLoad(name, dataset.DefaultConfig())
		chance := 1.0 / float64(ds.Classes)
		mlp := TrainMLP(ds.TrainX, ds.TrainY, ds.Classes, DefaultMLPConfig())
		if acc := Accuracy(mlp, ds.TestX, ds.TestY); acc < chance+0.3 {
			t.Fatalf("%s: MLP test accuracy %.3f too close to chance", name, acc)
		}
		abCfg := DefaultAdaBoostConfig()
		abCfg.Rounds = 25
		ab := TrainAdaBoost(ds.TrainX, ds.TrainY, ds.Classes, abCfg)
		if acc := Accuracy(ab, ds.TestX, ds.TestY); acc < chance+0.2 {
			t.Fatalf("%s: AdaBoost test accuracy %.3f too close to chance", name, acc)
		}
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := TrainMLP([][]float64{{1, 2}}, []int{0}, 1, MLPConfig{Hidden: 2, Epochs: 1, LearningRate: 0.1, Seed: 1})
	if Accuracy(m, nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestTrainPanics(t *testing.T) {
	mustPanic(t, "MLP empty", func() { TrainMLP(nil, nil, 2, DefaultMLPConfig()) })
	mustPanic(t, "MLP bad config", func() {
		TrainMLP([][]float64{{1}}, []int{0}, 1, MLPConfig{Hidden: 0, Epochs: 1})
	})
	mustPanic(t, "AdaBoost empty", func() { TrainAdaBoost(nil, nil, 2, DefaultAdaBoostConfig()) })
	mustPanic(t, "AdaBoost bad config", func() {
		TrainAdaBoost([][]float64{{1}}, []int{0}, 1, AdaBoostConfig{Rounds: 0, Thresholds: 1})
	})
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	fn()
}

func BenchmarkMLPTrainSmall(b *testing.B) {
	x, y := blobs(20, 3, 30, 0.05, 1)
	cfg := DefaultMLPConfig()
	cfg.Epochs = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainMLP(x, y, 3, cfg)
	}
}

func BenchmarkAdaBoostTrainSmall(b *testing.B) {
	x, y := blobs(20, 3, 30, 0.05, 1)
	cfg := AdaBoostConfig{Rounds: 10, Thresholds: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainAdaBoost(x, y, 3, cfg)
	}
}

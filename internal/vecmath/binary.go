package vecmath

import "math/bits"

// This file is the bit-packed compute-kernel layer: sign packing, XOR +
// popcount Hamming distance, and the exact signed accumulate that packed
// encode rides on. One uint64 word carries 64 dimensions, so a Hamming
// row costs D/64 XOR+popcount ops where the float cosine costs 3·D
// multiply-adds. The same two invariants as kernel.go hold: blocked and
// parallel variants are bit-identical to the scalar forms (trivially so
// for integer popcount sums; load-bearing for AxpySigned, which performs
// exactly one ±f float add per element in ascending-j independence), and
// parallel variants distribute whole rows.
//
// Sign-of-zero convention — the canonical statement for the entire
// binary layer. A value v maps to the POSITIVE side iff v >= 0: exact
// zeros are positive. Everything downstream agrees:
//
//   - PackSignsInto here: bit j set ⇔ x[j] >= 0
//   - hdc.Binarize and BinaryModel query packing: v >= 0 → bit 1 (+1)
//   - internal/quant 1-bit: v >= 0 → +meanAbs
//   - hdc.PackBasis is NOT a sign quantizer: it packs an already-±1
//     basis and panics on any other value (including 0) rather than
//     silently picking a side.
//
// Consequence, enforced by a differential test in internal/quant:
// Binarize(Quantize1bit(m)) bit-equals Binarize(m) even for models
// containing exact zeros.

// PackedWords returns the number of uint64 words holding d packed
// dimensions: ceil(d/64).
func PackedWords(d int) int { return (d + 63) / 64 }

// PackSignsInto packs the sign pattern of x into dst: bit j set iff
// x[j] >= 0 (see the sign-of-zero convention above). dst must have
// length PackedWords(len(x)); tail bits beyond len(x) are cleared so
// packed vectors of equal dimension XOR without a mask.
func PackSignsInto(dst []uint64, x []float64) {
	checkLen("PackSignsInto dst", len(dst), PackedWords(len(x)))
	for w := range dst {
		base := w * 64
		n := len(x) - base
		if n > 64 {
			n = 64
		}
		var word uint64
		for j := 0; j < n; j++ {
			if x[base+j] >= 0 {
				word |= 1 << uint(j)
			}
		}
		dst[w] = word
	}
}

// Hamming returns the number of differing bits between a and b
// (popcount of the XOR), the packed analogue of a distance. Callers
// keep tail bits zeroed (PackSignsInto and the hdc packers do), so no
// mask is needed here.
func Hamming(a, b []uint64) int {
	checkLen("Hamming", len(a), len(b))
	hd := 0
	for i, w := range a {
		hd += bits.OnesCount64(w ^ b[i])
	}
	return hd
}

// hammingRows4 computes dst[r] = Hamming(rows[r], q) for four rows
// sharing one pass over q, mirroring mulVec4: each query word is loaded
// once per four rows. Integer sums are order-independent, so this is
// exactly Hamming row by row.
func hammingRows4(dst []int, r0, r1, r2, r3, q []uint64) {
	var h0, h1, h2, h3 int
	for i, qi := range q {
		h0 += bits.OnesCount64(r0[i] ^ qi)
		h1 += bits.OnesCount64(r1[i] ^ qi)
		h2 += bits.OnesCount64(r2[i] ^ qi)
		h3 += bits.OnesCount64(r3[i] ^ qi)
	}
	dst[0], dst[1], dst[2], dst[3] = h0, h1, h2, h3
}

// hammingRowsRange fills dst[lo:hi] with Hamming distances of packed
// rows lo..hi (words uint64 each, stored back to back in rows) against
// q, through the four-row blocked kernel.
func hammingRowsRange(dst []int, rows []uint64, words int, q []uint64, lo, hi int) {
	i := lo
	for ; i+4 <= hi; i += 4 {
		hammingRows4(dst[i:i+4],
			rows[i*words:(i+1)*words],
			rows[(i+1)*words:(i+2)*words],
			rows[(i+2)*words:(i+3)*words],
			rows[(i+3)*words:(i+4)*words], q)
	}
	for ; i < hi; i++ {
		dst[i] = Hamming(rows[i*words:(i+1)*words], q)
	}
}

// HammingRowsInto computes dst[r] = Hamming(row r, q) for every packed
// row in rows (k rows × words uint64, k = len(dst)) without allocating.
func HammingRowsInto(dst []int, rows []uint64, words int, q []uint64) {
	checkLen("HammingRowsInto q", len(q), words)
	checkLen("HammingRowsInto rows", len(rows), len(dst)*words)
	hammingRowsRange(dst, rows, words, q, 0, len(dst))
}

// HammingRowsIntoParallel is HammingRowsInto with the row loop fanned
// out across up to workers goroutines (0 selects GOMAXPROCS). Small
// matrices run sequentially under the same flop gate as the float
// kernels (one word op stands in for one multiply-add). Bit-identical
// to HammingRowsInto for any worker count.
func HammingRowsIntoParallel(dst []int, rows []uint64, words int, q []uint64, workers int) {
	checkLen("HammingRowsIntoParallel q", len(q), words)
	checkLen("HammingRowsIntoParallel rows", len(rows), len(dst)*words)
	if len(dst)*words < minParallelFlops {
		hammingRowsRange(dst, rows, words, q, 0, len(dst))
		return
	}
	ParallelRows(len(dst), workers, func(lo, hi int) {
		hammingRowsRange(dst, rows, words, q, lo, hi)
	})
}

// AxpySigned performs dst[j] += f where bit j of row is set and
// dst[j] -= f where it is clear, for j < len(dst) — the packed-basis
// encode step. It walks set bits and complement bits with trailing-zero
// scans instead of branching per element, which removes the
// data-dependent branch from the hot loop; each element still receives
// exactly one ±f add (dst[j] -= f and dst[j] += (-f) are the same IEEE
// operation), so the result is bit-identical to the dense Axpy against
// the unpacked ±1 row regardless of traversal order.
func AxpySigned(f float64, row []uint64, dst []float64) {
	checkLen("AxpySigned row", len(row), PackedWords(len(dst)))
	for w, word := range row {
		base := w * 64
		mask := ^uint64(0)
		if n := len(dst) - base; n < 64 {
			mask = (uint64(1) << uint(n)) - 1
		}
		for set := word & mask; set != 0; set &= set - 1 {
			dst[base+bits.TrailingZeros64(set)] += f
		}
		for clr := ^word & mask; clr != 0; clr &= clr - 1 {
			dst[base+bits.TrailingZeros64(clr)] -= f
		}
	}
}

// ArgMinInt returns the index of the smallest element of x, ties to the
// lowest index — the integer analogue of ArgMin for Hamming distances.
func ArgMinInt(x []int) int {
	if len(x) == 0 {
		panic("vecmath: ArgMinInt of empty slice")
	}
	best := 0
	for i, v := range x {
		if v < x[best] {
			best = i
		}
	}
	return best
}

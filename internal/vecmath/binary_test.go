package vecmath

import (
	"math"
	"math/bits"
	"testing"

	"prid/internal/rng"
)

// tailDims exercises every packed tail shape: sub-word, exact word
// boundaries, and d % 64 ∈ {1, 63} on either side of them.
var tailDims = []int{1, 7, 63, 64, 65, 100, 127, 128, 129, 191, 256, 300}

// packRef is the scalar reference packer: bit j set iff x[j] >= 0.
func packRef(x []float64) []uint64 {
	dst := make([]uint64, PackedWords(len(x)))
	for j, v := range x {
		if v >= 0 {
			dst[j/64] |= 1 << uint(j%64)
		}
	}
	return dst
}

// randSigns draws a vector of noise with exact zeros sprinkled in, so
// the v >= 0 zero-is-positive convention is actually exercised.
func randSigns(n int, seed uint64) []float64 {
	v := make([]float64, n)
	r := rng.New(seed)
	r.FillUniform(v, -1, 1)
	for i := 0; i < n; i += 7 {
		v[i] = 0
	}
	if n > 2 {
		v[1] = math.Copysign(0, -1) // −0 is >= 0: positive side
	}
	return v
}

func TestPackSignsIntoMatchesReference(t *testing.T) {
	for _, d := range tailDims {
		x := randSigns(d, uint64(d))
		want := packRef(x)
		got := make([]uint64, PackedWords(d))
		// Pre-poison dst so stale words and tail bits must be cleared.
		for i := range got {
			got[i] = ^uint64(0)
		}
		PackSignsInto(got, x)
		for w := range want {
			if got[w] != want[w] {
				t.Fatalf("d=%d word %d: packed %016x != reference %016x", d, w, got[w], want[w])
			}
		}
		if tail := uint(d % 64); tail != 0 {
			if got[len(got)-1]&^((uint64(1)<<tail)-1) != 0 {
				t.Fatalf("d=%d: tail bits beyond dim are set: %016x", d, got[len(got)-1])
			}
		}
	}
}

// hammingRef counts differing bits the slow way, bit by bit.
func hammingRef(a, b []uint64, d int) int {
	hd := 0
	for j := 0; j < d; j++ {
		if (a[j/64]>>uint(j%64))&1 != (b[j/64]>>uint(j%64))&1 {
			hd++
		}
	}
	return hd
}

func TestHammingMatchesBitReference(t *testing.T) {
	for _, d := range tailDims {
		a := packRef(randSigns(d, uint64(d)))
		b := packRef(randSigns(d, uint64(d)+1))
		if got, want := Hamming(a, b), hammingRef(a, b, d); got != want {
			t.Fatalf("d=%d: Hamming %d != reference %d", d, got, want)
		}
	}
	if Hamming([]uint64{0}, []uint64{^uint64(0)}) != 64 {
		t.Fatal("Hamming of complementary words != 64")
	}
}

// randPackedRows builds k packed rows of dimension d with tail bits
// clear, as every packer in the repo guarantees.
func randPackedRows(k, d int, seed uint64) []uint64 {
	words := PackedWords(d)
	rows := make([]uint64, k*words)
	r := rng.New(seed)
	for i := range rows {
		rows[i] = r.Uint64()
	}
	if tail := uint(d % 64); tail != 0 {
		mask := (uint64(1) << tail) - 1
		for row := 0; row < k; row++ {
			rows[row*words+words-1] &= mask
		}
	}
	return rows
}

// The blocked row kernel must equal Hamming row by row at every k that
// exercises the 4-row block remainder, and every tail dimension.
func TestHammingRowsIntoBitIdentical(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 10, 17} {
		for _, d := range tailDims {
			words := PackedWords(d)
			rows := randPackedRows(k, d, uint64(k*1000+d))
			q := packRef(randSigns(d, uint64(d)+9))
			got := make([]int, k)
			HammingRowsInto(got, rows, words, q)
			for r := 0; r < k; r++ {
				if want := Hamming(rows[r*words:(r+1)*words], q); got[r] != want {
					t.Fatalf("k=%d d=%d row %d: blocked %d != Hamming %d", k, d, r, got[r], want)
				}
			}
		}
	}
}

// Parallel Hamming rows must be bit-identical to sequential for every
// worker count, above and below the flop gate.
func TestHammingRowsIntoParallelBitIdentical(t *testing.T) {
	for _, shape := range [][2]int{{5, 65}, {10, 2048}, {700, 8192}, {1000, 4097}} {
		k, d := shape[0], shape[1]
		words := PackedWords(d)
		rows := randPackedRows(k, d, uint64(d))
		q := packRef(randSigns(d, 3))
		want := make([]int, k)
		HammingRowsInto(want, rows, words, q)
		for _, workers := range []int{0, 1, 2, 3, 4, 7, 16} {
			got := make([]int, k)
			HammingRowsIntoParallel(got, rows, words, q, workers)
			for r := range got {
				if got[r] != want[r] {
					t.Fatalf("k=%d d=%d workers=%d row %d: parallel %d != sequential %d",
						k, d, workers, r, got[r], want[r])
				}
			}
		}
	}
}

// axpySignedRef is the scalar reference: one branch per element.
func axpySignedRef(f float64, row []uint64, dst []float64) {
	for j := range dst {
		if row[j/64]&(1<<uint(j%64)) != 0 {
			dst[j] += f
		} else {
			dst[j] -= f
		}
	}
}

// The bit-walk accumulate must be bit-identical to the per-element
// branch — each element receives exactly one ±f add either way — at
// every tail dimension, over a chain of accumulations (the encode
// loop's shape: many features into one dst).
func TestAxpySignedBitIdenticalToReference(t *testing.T) {
	for _, d := range tailDims {
		got := make([]float64, d)
		want := make([]float64, d)
		feats := randSigns(16, uint64(d)+5)
		for k, f := range feats {
			row := randPackedRows(1, d, uint64(d*100+k))
			AxpySigned(f, row, got)
			axpySignedRef(f, row, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("d=%d elem %d: bit-walk %v != scalar reference %v", d, j, got[j], want[j])
			}
		}
	}
}

func TestArgMinInt(t *testing.T) {
	if got := ArgMinInt([]int{5, 2, 9, 2}); got != 1 {
		t.Fatalf("ArgMinInt ties-to-lowest: got %d, want 1", got)
	}
	if got := ArgMinInt([]int{3}); got != 0 {
		t.Fatalf("ArgMinInt single: got %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ArgMinInt(empty) did not panic")
		}
	}()
	ArgMinInt(nil)
}

func TestBinaryKernelPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"PackSignsInto short dst": func() { PackSignsInto(make([]uint64, 1), make([]float64, 65)) },
		"Hamming length mismatch": func() { Hamming(make([]uint64, 2), make([]uint64, 3)) },
		"HammingRowsInto q":       func() { HammingRowsInto(make([]int, 2), make([]uint64, 4), 2, make([]uint64, 1)) },
		"HammingRowsInto rows":    func() { HammingRowsInto(make([]int, 3), make([]uint64, 4), 2, make([]uint64, 2)) },
		"AxpySigned short row":    func() { AxpySigned(1, make([]uint64, 1), make([]float64, 65)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Sanity anchor for the word-parallel claim: popcount of a full word
// equals 64 bit tests.
func TestOnesCountAnchor(t *testing.T) {
	if bits.OnesCount64(^uint64(0)) != 64 {
		t.Fatal("OnesCount64(all ones) != 64")
	}
}

func BenchmarkHammingRows10x2048(b *testing.B) {
	const k, d = 10, 2048
	words := PackedWords(d)
	rows := randPackedRows(k, d, 1)
	q := packRef(randSigns(d, 2))
	dst := make([]int, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HammingRowsInto(dst, rows, words, q)
	}
}

func BenchmarkPackSigns2048(b *testing.B) {
	x := randSigns(2048, 1)
	dst := make([]uint64, PackedWords(2048))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PackSignsInto(dst, x)
	}
}

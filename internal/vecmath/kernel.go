package vecmath

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the shared compute-kernel layer: blocked matrix-vector
// products and a parallel row-range helper that the hot paths (attack
// probes, decoder Gram builds, experiment sweeps) are built on. Two
// invariants hold everywhere:
//
//   - Per-row accumulation order is exactly Dot's (same four lanes, same
//     tail), so a blocked or parallel kernel is bit-identical to calling
//     Dot row by row. Determinism is a test gate for the attack loops, so
//     speed must never perturb the last bits.
//   - Parallel variants distribute whole rows; no row's reduction is ever
//     split across workers.

// minParallelFlops gates goroutine fan-out: below roughly this many
// multiply-adds the spawn/wait overhead exceeds the work, so parallel
// entry points fall back to the sequential kernel.
const minParallelFlops = 1 << 16

// ParallelRows runs fn over disjoint chunks covering [0, n) on up to
// workers goroutines (0 selects GOMAXPROCS). Chunks are claimed through a
// shared atomic cursor — the worker shape proven in hdc.EncodeAllParallel:
// claiming work is one atomic add, and imbalanced rows (e.g. a triangular
// Gram build) self-balance because fast workers simply claim more chunks.
// fn must be safe to run concurrently on disjoint ranges.
func ParallelRows(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	// ~4 chunks per worker: coarse enough that cursor traffic is noise,
	// fine enough that uneven chunk costs still balance.
	chunk := (n + 4*workers - 1) / (4 * workers)
	if chunk < 1 {
		chunk = 1
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() { //pridlint:allow gofan this launch site IS the ParallelRows kernel everything else rides
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// mulVec4 computes dst[r] = rows[r]·x for four rows sharing one pass over
// x, so each element of x is loaded once per four rows instead of once per
// row. Each row keeps Dot's exact lane structure (four accumulators over
// i≡0..3 mod 4, tail into lane 0, left-to-right final sum), making the
// result bit-identical to four separate Dot calls.
func mulVec4(dst []float64, r0, r1, r2, r3, x []float64) {
	n := len(x)
	var a0, a1, a2, a3 float64
	var b0, b1, b2, b3 float64
	var c0, c1, c2, c3 float64
	var d0, d1, d2, d3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		a0 += r0[i] * x0
		a1 += r0[i+1] * x1
		a2 += r0[i+2] * x2
		a3 += r0[i+3] * x3
		b0 += r1[i] * x0
		b1 += r1[i+1] * x1
		b2 += r1[i+2] * x2
		b3 += r1[i+3] * x3
		c0 += r2[i] * x0
		c1 += r2[i+1] * x1
		c2 += r2[i+2] * x2
		c3 += r2[i+3] * x3
		d0 += r3[i] * x0
		d1 += r3[i+1] * x1
		d2 += r3[i+2] * x2
		d3 += r3[i+3] * x3
	}
	for ; i < n; i++ {
		xi := x[i]
		a0 += r0[i] * xi
		b0 += r1[i] * xi
		c0 += r2[i] * xi
		d0 += r3[i] * xi
	}
	dst[0] = a0 + a1 + a2 + a3
	dst[1] = b0 + b1 + b2 + b3
	dst[2] = c0 + c1 + c2 + c3
	dst[3] = d0 + d1 + d2 + d3
}

// mulVecRange fills dst[lo:hi] with rows lo..hi of M·x through the
// four-row blocked kernel. Row grouping does not affect values (rows are
// independent), so any [lo, hi) split is bit-identical to the full pass.
func (m *Matrix) mulVecRange(dst, x []float64, lo, hi int) {
	i := lo
	for ; i+4 <= hi; i += 4 {
		mulVec4(dst[i:i+4], m.Row(i), m.Row(i+1), m.Row(i+2), m.Row(i+3), x)
	}
	for ; i < hi; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
}

// MulVecInto computes dst = M·x without allocating, through the blocked
// kernel. dst must have length Rows; results are bit-identical to MulVec.
func (m *Matrix) MulVecInto(dst, x []float64) {
	checkLen("MulVecInto", len(x), m.Cols)
	checkLen("MulVecInto dst", len(dst), m.Rows)
	m.mulVecRange(dst, x, 0, m.Rows)
}

// MulVecIntoParallel is MulVecInto with the row loop fanned out across up
// to workers goroutines (0 selects GOMAXPROCS). Small products run
// sequentially — spawning workers costs more than the product below the
// flop gate. Bit-identical to MulVecInto for any worker count.
func (m *Matrix) MulVecIntoParallel(dst, x []float64, workers int) {
	checkLen("MulVecIntoParallel", len(x), m.Cols)
	checkLen("MulVecIntoParallel dst", len(dst), m.Rows)
	if m.Rows*m.Cols < minParallelFlops {
		m.mulVecRange(dst, x, 0, m.Rows)
		return
	}
	ParallelRows(m.Rows, workers, func(lo, hi int) {
		m.mulVecRange(dst, x, lo, hi)
	})
}

// GramParallel is Gram with the row loop fanned out across up to workers
// goroutines (0 selects GOMAXPROCS). Every (i, j) entry is the same Dot
// call as Gram's, so the result is bit-identical; the triangular row costs
// balance through ParallelRows' chunk claiming. Each worker writes entry
// (i, j) and its mirror (j, i) only for rows i it owns, so writes never
// collide.
func (m *Matrix) GramParallel(workers int) *Matrix {
	g := NewMatrix(m.Rows, m.Rows)
	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ri := m.Row(i)
			for j := i; j < m.Rows; j++ {
				v := Dot(ri, m.Row(j))
				g.Set(i, j, v)
				g.Set(j, i, v)
			}
		}
	}
	// Total work is ~Rows²/2 dots of length Cols.
	if m.Rows*m.Rows/2*m.Cols < minParallelFlops {
		fill(0, m.Rows)
		return g
	}
	ParallelRows(m.Rows, workers, fill)
	return g
}

package vecmath

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x (dividing by n, matching
// the paper's use of σ² as a spread measure over similarity scores), or 0
// for slices shorter than 2.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// MinMax returns the smallest and largest elements of x. It panics on an
// empty slice.
func MinMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		panic("vecmath: MinMax of empty slice")
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of x using linear
// interpolation between order statistics. It panics on an empty slice or a
// p outside [0, 100].
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		panic("vecmath: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("vecmath: Percentile p out of [0,100]")
	}
	sorted := Clone(x)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of x.
func Median(x []float64) float64 { return Percentile(x, 50) }

// Histogram counts x into bins uniform bins over [lo, hi]. Values outside
// the range are clamped into the first or last bin. It panics for bins < 1
// or hi <= lo.
func Histogram(x []float64, lo, hi float64, bins int) []int {
	if bins < 1 {
		panic("vecmath: Histogram with bins < 1")
	}
	if hi <= lo {
		panic("vecmath: Histogram with hi <= lo")
	}
	counts := make([]int, bins)
	width := (hi - lo) / float64(bins)
	for _, v := range x {
		b := int((v - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}

// Welford accumulates mean and variance in one streaming pass. The zero
// value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(v float64) {
	w.n++
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// Count returns the number of observations seen.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean, or 0 before any observation.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance, or 0 with fewer than
// two observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

package vecmath

import (
	"sync"
	"testing"

	"prid/internal/rng"
)

// randMatrix fills an r×c matrix with uniform noise — big enough sizes
// cross the parallel flop gate, odd sizes exercise block/lane tails.
func randMatrix(r, c int, seed uint64) *Matrix {
	m := NewMatrix(r, c)
	rng.New(seed).FillUniform(m.Data, -1, 1)
	return m
}

func randVec(n int, seed uint64) []float64 {
	v := make([]float64, n)
	rng.New(seed).FillUniform(v, -1, 1)
	return v
}

// The blocked kernel's core contract: MulVecInto is bit-identical to
// calling Dot row by row, at every size that exercises the 4-row block
// remainder and the 4-lane tail.
func TestMulVecIntoBitIdenticalToDot(t *testing.T) {
	for _, shape := range [][2]int{{1, 1}, {3, 5}, {4, 8}, {5, 7}, {17, 33}, {64, 129}, {130, 257}} {
		m := randMatrix(shape[0], shape[1], uint64(shape[0]*1000+shape[1]))
		x := randVec(shape[1], 99)
		dst := make([]float64, shape[0])
		m.MulVecInto(dst, x)
		for i := 0; i < m.Rows; i++ {
			if want := Dot(m.Row(i), x); dst[i] != want {
				t.Fatalf("%dx%d row %d: blocked %v != Dot %v", shape[0], shape[1], i, dst[i], want)
			}
		}
		// And the allocating MulVec rides the same kernel.
		y := m.MulVec(x)
		for i := range y {
			if y[i] != dst[i] {
				t.Fatalf("%dx%d row %d: MulVec %v != MulVecInto %v", shape[0], shape[1], i, y[i], dst[i])
			}
		}
	}
}

// Parallel matvec must be bit-identical to sequential for every worker
// count, above and below the flop gate.
func TestMulVecIntoParallelBitIdentical(t *testing.T) {
	for _, shape := range [][2]int{{7, 11}, {61, 1031}, {128, 1024}} {
		m := randMatrix(shape[0], shape[1], uint64(shape[1]))
		x := randVec(shape[1], 7)
		want := make([]float64, shape[0])
		m.MulVecInto(want, x)
		for _, workers := range []int{0, 1, 2, 3, 4, 7, 16} {
			got := make([]float64, shape[0])
			m.MulVecIntoParallel(got, x, workers)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%dx%d workers=%d row %d: parallel %v != sequential %v",
						shape[0], shape[1], workers, i, got[i], want[i])
				}
			}
		}
	}
}

// GramParallel must be bit-identical to the sequential Gram for every
// worker count (the decoder's Cholesky input must not depend on core
// count).
func TestGramParallelBitIdentical(t *testing.T) {
	for _, shape := range [][2]int{{5, 9}, {24, 1024}, {33, 513}} {
		m := randMatrix(shape[0], shape[1], uint64(shape[0]))
		want := m.Gram()
		for _, workers := range []int{0, 1, 2, 4, 9} {
			got := m.GramParallel(workers)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%dx%d workers=%d entry %d: parallel %v != sequential %v",
						shape[0], shape[1], workers, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// ParallelRows must cover [0, n) exactly once, for any worker count,
// including workers > n and n == 0.
func TestParallelRowsCoversExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 17, 100, 1001} {
		for _, workers := range []int{0, 1, 2, 3, 8, 200} {
			hits := make([]int32, n)
			var mu sync.Mutex
			ParallelRows(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("n=%d workers=%d: bad range [%d, %d)", n, workers, lo, hi)
					return
				}
				mu.Lock()
				for i := lo; i < hi; i++ {
					hits[i]++
				}
				mu.Unlock()
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

// Regression for the similarity-kernel inconsistency: Cosine must be
// exactly Dot/(Norm2·Norm2) — the same primitive kernels every other
// similarity call site composes — so a cosine computed inline from
// Dot/Norm2 (the attack's incremental probes, the model's class scores)
// is bit-identical to calling Cosine.
func TestCosineBitIdenticalToDotNorm(t *testing.T) {
	for _, n := range []int{1, 3, 4, 7, 1024, 1031} {
		a := randVec(n, uint64(n))
		b := randVec(n, uint64(n)+17)
		want := Dot(a, b) / (Norm2(a) * Norm2(b))
		if got := Cosine(a, b); got != want {
			t.Fatalf("n=%d: Cosine %v != Dot/(Norm2·Norm2) %v", n, got, want)
		}
	}
	// Zero vectors short-circuit to 0 instead of dividing by zero.
	if got := Cosine(make([]float64, 8), randVec(8, 1)); got != 0 {
		t.Fatalf("Cosine(0, b) = %v, want 0", got)
	}
}

func BenchmarkMulVecInto128x1024(b *testing.B) {
	m := randMatrix(128, 1024, 1)
	x := randVec(1024, 2)
	dst := make([]float64, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecInto(dst, x)
	}
}

func BenchmarkGramParallel64x1024(b *testing.B) {
	m := randMatrix(64, 1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.GramParallel(0)
	}
}

package vecmath

import (
	"sync"
	"testing"
)

// The parallel kernels share nothing but their read-only inputs, so any
// number of concurrent callers must stay race-free and bit-identical to
// a lone caller. This is the race gate for that contract (run under
// `make race`): several goroutines drive ParallelRows, MulVecIntoParallel,
// and GramParallel at once, each into its own destination, and every
// result is compared against the serial answer.
func TestParallelKernelsConcurrentCallersBitIdentical(t *testing.T) {
	m := randMatrix(93, 517, 5)
	x := randVec(517, 6)
	wantMul := make([]float64, m.Rows)
	m.MulVecInto(wantMul, x)
	wantGram := m.GramParallel(1)

	// Packed Hamming inputs: big enough to clear the flop gate so the
	// parallel path actually fans out.
	const hk, hd = 700, 8192
	hwords := PackedWords(hd)
	hrows := randPackedRows(hk, hd, 7)
	hq := packRef(randSigns(hd, 8))
	wantHam := make([]int, hk)
	HammingRowsInto(wantHam, hrows, hwords, hq)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			workers := 1 + g%4

			// Raw ParallelRows fan-out with per-goroutine state.
			sums := make([]float64, m.Rows)
			ParallelRows(m.Rows, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					sums[i] = Dot(m.Row(i), x)
				}
			})
			for i := range sums {
				if sums[i] != wantMul[i] {
					errs <- "ParallelRows result diverged under concurrent callers"
					return
				}
			}

			got := make([]float64, m.Rows)
			m.MulVecIntoParallel(got, x, workers)
			for i := range got {
				if got[i] != wantMul[i] {
					errs <- "MulVecIntoParallel diverged under concurrent callers"
					return
				}
			}

			gram := m.GramParallel(workers)
			for i := range gram.Data {
				if gram.Data[i] != wantGram.Data[i] {
					errs <- "GramParallel diverged under concurrent callers"
					return
				}
			}

			ham := make([]int, hk)
			HammingRowsIntoParallel(ham, hrows, hwords, hq, workers)
			for i := range ham {
				if ham[i] != wantHam[i] {
					errs <- "HammingRowsIntoParallel diverged under concurrent callers"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

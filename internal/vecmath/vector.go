// Package vecmath implements the dense linear-algebra and statistics
// primitives the PRID reproduction is built on: plain float64 slice
// arithmetic, a row-major dense matrix with Gram products and a Cholesky
// solver (the backbone of the learning-based decoder), and the similarity /
// error measures the paper reports (cosine similarity, MSE, PSNR).
//
// Everything is written against stdlib only. Functions that combine two
// slices panic when the lengths disagree: a length mismatch in this codebase
// is always a programming error (features and bases are sized once at
// construction), never a data condition worth returning.
package vecmath

import (
	"fmt"
	"math"
)

func checkLen(op string, a, b int) {
	if a != b {
		panic(fmt.Sprintf("vecmath: %s length mismatch: %d vs %d", op, a, b))
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	checkLen("Dot", len(a), len(b))
	var s0, s1, s2, s3 float64
	n := len(a)
	i := 0
	// Four-way unroll: the hypervector dimension D is the hot loop of the
	// whole repository (encode, decode, similarity all reduce to Dot).
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// Axpy performs dst += alpha*x element-wise.
func Axpy(alpha float64, x, dst []float64) {
	checkLen("Axpy", len(x), len(dst))
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add returns a+b as a new slice.
func Add(a, b []float64) []float64 {
	checkLen("Add", len(a), len(b))
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a-b as a new slice.
func Sub(a, b []float64) []float64 {
	checkLen("Sub", len(a), len(b))
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// SubInto writes a-b into dst, which must have the same length.
func SubInto(dst, a, b []float64) {
	checkLen("SubInto", len(a), len(b))
	checkLen("SubInto dst", len(dst), len(a))
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Zero sets every element of x to 0.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// Normalize scales x to unit Euclidean norm in place and returns the
// original norm. A zero vector is left unchanged and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 { //pridlint:allow floateq exact guard: only a true zero vector is left unnormalized
		return 0
	}
	Scale(1/n, x)
	return n
}

// Cosine returns the cosine similarity of a and b, the similarity measure δ
// used throughout the paper. If either vector is zero it returns 0.
//
// It is built on the same Dot/Norm2 kernels as every other similarity
// path — bit-identical to Dot(a,b)/(Norm2(a)·Norm2(b)) — so code that
// mixes Cosine with explicit Dot/Norm2 terms (the attack's rank-one
// similarity updates, the decoder's residuals) cannot drift from it in
// the last bits. A hand-rolled fused loop here once disagreed with the
// unrolled Dot below machine precision, which is exactly the margin the
// attack's keep/replace rule decides within.
func Cosine(a, b []float64) float64 {
	checkLen("Cosine", len(a), len(b))
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 { //pridlint:allow floateq exact guard: zero norms make the cosine undefined, not small
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// MSE returns the mean squared error between a and b.
func MSE(a, b []float64) float64 {
	checkLen("MSE", len(a), len(b))
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}

// PSNR returns the peak signal-to-noise ratio in decibels between a
// reference signal and its reconstruction, using the reference's dynamic
// range as the peak (the convention for image reconstruction quality used
// by the paper's Figure 1). It returns +Inf for an exact reconstruction.
func PSNR(ref, recon []float64) float64 {
	mse := MSE(ref, recon)
	if mse == 0 { //pridlint:allow floateq exact guard: only a perfect reconstruction earns +Inf dB
		return math.Inf(1)
	}
	lo, hi := ref[0], ref[0]
	for _, v := range ref {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	peak := hi - lo
	if peak == 0 { //pridlint:allow floateq exact guard for a constant reference (peak exactly zero)
		peak = 1
	}
	return 10 * math.Log10(peak*peak/mse)
}

// ArgMax returns the index of the maximum element of x, or -1 for an empty
// slice. Ties resolve to the earliest index.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the minimum element of x, or -1 for an empty
// slice. Ties resolve to the earliest index.
func ArgMin(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] < x[best] {
			best = i
		}
	}
	return best
}

// TopK returns the indices of the k largest elements of x in descending
// value order. It panics if k < 0 or k > len(x). Selection is done with a
// partial heap-free quadratic scan for small k (the common case here:
// top-k nearest train points with k ≤ 10).
func TopK(x []float64, k int) []int {
	if k < 0 || k > len(x) {
		panic("vecmath: TopK k out of range")
	}
	idx := make([]int, 0, k)
	taken := make([]bool, len(x))
	for len(idx) < k {
		best := -1
		for i := range x {
			if taken[i] {
				continue
			}
			if best == -1 || x[i] > x[best] {
				best = i
			}
		}
		taken[best] = true
		idx = append(idx, best)
	}
	return idx
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampSlice clamps every element of x to [lo, hi] in place.
func ClampSlice(x []float64, lo, hi float64) {
	for i := range x {
		x[i] = Clamp(x[i], lo, hi)
	}
}

package vecmath

import (
	"math"
	"testing"
	"testing/quick"

	"prid/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDot(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{nil, nil, 0},
		{[]float64{1}, []float64{2}, 2},
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{1, -1, 1, -1, 1}, []float64{1, 1, 1, 1, 1}, 1},
		{[]float64{0.5, 0.25, 0.125, 2, 4, 8, 16, 32, 64}, []float64{2, 4, 8, 0.5, 0.25, 0.125, 0, 0, 0}, 6},
	}
	for i, c := range cases {
		if got := Dot(c.a, c.b); !almostEq(got, c.want, 1e-12) {
			t.Errorf("case %d: Dot = %v, want %v", i, got, c.want)
		}
	}
}

func TestDotMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 1000} {
		a := make([]float64, n)
		b := make([]float64, n)
		r.FillNorm(a)
		r.FillNorm(b)
		var want float64
		for i := range a {
			want += a[i] * b[i]
		}
		if got := Dot(a, b); !almostEq(got, want, 1e-9*float64(n)) {
			t.Errorf("n=%d: Dot=%v naive=%v", n, got, want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	dst := []float64{1, 2, 3}
	Axpy(2, []float64{10, 20, 30}, dst)
	want := []float64{21, 42, 63}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", dst, want)
		}
	}
}

func TestScaleAddSub(t *testing.T) {
	x := []float64{1, -2, 3}
	Scale(-2, x)
	if x[0] != -2 || x[1] != 4 || x[2] != -6 {
		t.Fatalf("Scale = %v", x)
	}
	s := Add([]float64{1, 2}, []float64{3, 4})
	if s[0] != 4 || s[1] != 6 {
		t.Fatalf("Add = %v", s)
	}
	d := Sub([]float64{1, 2}, []float64{3, 5})
	if d[0] != -2 || d[1] != -3 {
		t.Fatalf("Sub = %v", d)
	}
	dst := make([]float64, 2)
	SubInto(dst, []float64{5, 5}, []float64{2, 1})
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("SubInto = %v", dst)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := []float64{1, 2}
	b := Clone(a)
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone aliases its input")
	}
}

func TestZeroFill(t *testing.T) {
	x := []float64{1, 2, 3}
	Fill(x, 7)
	for _, v := range x {
		if v != 7 {
			t.Fatalf("Fill = %v", x)
		}
	}
	Zero(x)
	for _, v := range x {
		if v != 0 {
			t.Fatalf("Zero = %v", x)
		}
	}
}

func TestNorm2AndNormalize(t *testing.T) {
	x := []float64{3, 4}
	if got := Norm2(x); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Norm2 = %v", got)
	}
	n := Normalize(x)
	if !almostEq(n, 5, 1e-12) {
		t.Fatalf("Normalize returned %v", n)
	}
	if !almostEq(Norm2(x), 1, 1e-12) {
		t.Fatalf("normalized norm = %v", Norm2(x))
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Fatal("Normalize of zero vector should return 0")
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); !almostEq(got, 0, 1e-12) {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := Cosine([]float64{2, 2}, []float64{5, 5}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("parallel cosine = %v", got)
	}
	if got := Cosine([]float64{1, 1}, []float64{-1, -1}); !almostEq(got, -1, 1e-12) {
		t.Fatalf("antiparallel cosine = %v", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
}

// Property: cosine similarity is bounded by [-1, 1] and scale invariant.
func TestCosineProperties(t *testing.T) {
	r := rng.New(2)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(64)
		a := make([]float64, n)
		b := make([]float64, n)
		rr.FillNorm(a)
		rr.FillNorm(b)
		c := Cosine(a, b)
		if c < -1-1e-9 || c > 1+1e-9 {
			return false
		}
		scaled := Clone(a)
		Scale(1+9*rr.Float64(), scaled)
		return almostEq(Cosine(scaled, b), c, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestMSE(t *testing.T) {
	if got := MSE([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("identical MSE = %v", got)
	}
	if got := MSE([]float64{0, 0}, []float64{3, 4}); !almostEq(got, 12.5, 1e-12) {
		t.Fatalf("MSE = %v, want 12.5", got)
	}
	if got := MSE(nil, nil); got != 0 {
		t.Fatalf("empty MSE = %v", got)
	}
}

func TestPSNR(t *testing.T) {
	ref := []float64{0, 1, 0, 1}
	if !math.IsInf(PSNR(ref, ref), 1) {
		t.Fatal("PSNR of exact reconstruction should be +Inf")
	}
	noisy := []float64{0.1, 0.9, 0.1, 0.9}
	good := PSNR(ref, noisy)
	worse := PSNR(ref, []float64{0.5, 0.5, 0.5, 0.5})
	if good <= worse {
		t.Fatalf("PSNR ordering wrong: light noise %v <= heavy noise %v", good, worse)
	}
	// MSE 0.01 against peak 1 → 20 dB exactly.
	if !almostEq(good, 20, 1e-9) {
		t.Fatalf("PSNR = %v, want 20", good)
	}
}

func TestArgMaxArgMin(t *testing.T) {
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Fatal("empty ArgMax/ArgMin should be -1")
	}
	x := []float64{3, 9, -2, 9, 0}
	if got := ArgMax(x); got != 1 {
		t.Fatalf("ArgMax = %d, want 1 (first of ties)", got)
	}
	if got := ArgMin(x); got != 2 {
		t.Fatalf("ArgMin = %d, want 2", got)
	}
}

func TestTopK(t *testing.T) {
	x := []float64{5, 1, 9, 7, 3}
	got := TopK(x, 3)
	want := []int{2, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	if len(TopK(x, 0)) != 0 {
		t.Fatal("TopK(x, 0) should be empty")
	}
	all := TopK(x, len(x))
	if len(all) != len(x) {
		t.Fatalf("TopK full length = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if x[all[i-1]] < x[all[i]] {
			t.Fatalf("TopK not descending: %v", all)
		}
	}
}

func TestTopKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TopK out of range did not panic")
		}
	}()
	TopK([]float64{1}, 2)
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
	x := []float64{-2, 0.5, 3}
	ClampSlice(x, 0, 1)
	if x[0] != 0 || x[1] != 0.5 || x[2] != 1 {
		t.Fatalf("ClampSlice = %v", x)
	}
}

func BenchmarkDot4096(b *testing.B) {
	r := rng.New(1)
	x := make([]float64, 4096)
	y := make([]float64, 4096)
	r.FillNorm(x)
	r.FillNorm(y)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = Dot(x, y)
	}
	_ = sink
}

func BenchmarkCosine4096(b *testing.B) {
	r := rng.New(1)
	x := make([]float64, 4096)
	y := make([]float64, 4096)
	r.FillNorm(x)
	r.FillNorm(y)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = Cosine(x, y)
	}
	_ = sink
}

package vecmath

import (
	"testing"
	"testing/quick"

	"prid/internal/rng"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("Set/At wrong")
	}
	row := m.Row(1)
	row[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row should alias storage")
	}
	c := m.Clone()
	c.Set(0, 0, 77)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases storage")
	}
}

func TestMatrixFromRows(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("MatrixFromRows wrong: %+v", m)
	}
	empty := MatrixFromRows(nil)
	if empty.Rows != 0 || empty.Cols != 0 {
		t.Fatal("empty MatrixFromRows should be 0x0")
	}
}

func TestMulVec(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := m.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestMulVecT(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := m.MulVecT([]float64{1, 2})
	want := []float64{9, 12, 15}
	for i := range want {
		if !almostEq(y[i], want[i], 1e-12) {
			t.Fatalf("MulVecT = %v, want %v", y, want)
		}
	}
}

// Property: MulVecT is the adjoint of MulVec — ⟨M·x, y⟩ == ⟨x, Mᵀ·y⟩.
func TestAdjointProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		rows := 1 + r.Intn(12)
		cols := 1 + r.Intn(12)
		m := NewMatrix(rows, cols)
		r.FillNorm(m.Data)
		x := make([]float64, cols)
		y := make([]float64, rows)
		r.FillNorm(x)
		r.FillNorm(y)
		left := Dot(m.MulVec(x), y)
		right := Dot(x, m.MulVecT(y))
		return almostEq(left, right, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGram(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 0, 1}, {0, 2, 0}})
	g := m.Gram()
	if g.Rows != 2 || g.Cols != 2 {
		t.Fatalf("Gram shape %dx%d", g.Rows, g.Cols)
	}
	if g.At(0, 0) != 2 || g.At(1, 1) != 4 || g.At(0, 1) != 0 || g.At(1, 0) != 0 {
		t.Fatalf("Gram values wrong: %v", g.Data)
	}
}

// Property: the Gram matrix is symmetric with non-negative diagonal.
func TestGramProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		rows := 1 + r.Intn(8)
		cols := 1 + r.Intn(16)
		m := NewMatrix(rows, cols)
		r.FillNorm(m.Data)
		g := m.Gram()
		for i := 0; i < rows; i++ {
			if g.At(i, i) < 0 {
				return false
			}
			for j := 0; j < rows; j++ {
				if !almostEq(g.At(i, j), g.At(j, i), 1e-10) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddDiagonal(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	m.AddDiagonal(10)
	if m.At(0, 0) != 11 || m.At(1, 1) != 14 || m.At(0, 1) != 2 {
		t.Fatalf("AddDiagonal wrong: %v", m.Data)
	}
}

func TestCholeskyKnown(t *testing.T) {
	// A = [[4, 2], [2, 3]] is SPD with L = [[2, 0], [1, sqrt(2)]].
	a := MatrixFromRows([][]float64{{4, 2}, {2, 3}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := ch.Solve([]float64{8, 7})
	// Solving [[4,2],[2,3]] x = [8,7] → x = [1.25, 1.5].
	if !almostEq(x[0], 1.25, 1e-10) || !almostEq(x[1], 1.5, 1e-10) {
		t.Fatalf("Cholesky solve = %v", x)
	}
	if ch.Size() != 2 {
		t.Fatalf("Size = %d", ch.Size())
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("Cholesky accepted an indefinite matrix")
	}
	b := MatrixFromRows([][]float64{{1, 2, 3}}) // non-square
	if _, err := NewCholesky(b); err == nil {
		t.Fatal("Cholesky accepted a non-square matrix")
	}
}

// Property: for random M, A = M·Mᵀ + I is SPD and Cholesky solves A·x = b
// to high accuracy.
func TestCholeskySolveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(10)
		m := NewMatrix(n, n+3)
		r.FillNorm(m.Data)
		a := m.Gram()
		a.AddDiagonal(1)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		r.FillNorm(b)
		x := ch.Solve(b)
		residual := Sub(a.MulVec(x), b)
		return Norm2(residual) < 1e-8*(1+Norm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyLargerSystem(t *testing.T) {
	r := rng.New(99)
	const n = 50
	m := NewMatrix(n, n*2)
	r.FillNorm(m.Data)
	a := m.Gram()
	a.AddDiagonal(0.5)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	r.FillNorm(want)
	b := a.MulVec(want)
	got := ch.Solve(b)
	if err := MSE(want, got); err > 1e-16 {
		t.Fatalf("50x50 solve MSE = %g", err)
	}
}

func TestNewMatrixPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(-1, 2) did not panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestAddDiagonalPanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddDiagonal on non-square did not panic")
		}
	}()
	NewMatrix(2, 3).AddDiagonal(1)
}

func BenchmarkGram128x1024(b *testing.B) {
	r := rng.New(1)
	m := NewMatrix(128, 1024)
	r.FillNorm(m.Data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Gram()
	}
}

func BenchmarkCholesky128(b *testing.B) {
	r := rng.New(1)
	m := NewMatrix(128, 256)
	r.FillNorm(m.Data)
	a := m.Gram()
	a.AddDiagonal(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

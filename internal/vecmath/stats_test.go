package vecmath

import (
	"testing"
	"testing/quick"

	"prid/internal/rng"
)

func TestMeanVariance(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(x); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(x); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{42}) != 0 {
		t.Fatal("single-element variance should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 4, 1, 5})
	if lo != -1 || hi != 5 {
		t.Fatalf("MinMax = %v, %v", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax(empty) did not panic")
		}
	}()
	MinMax(nil)
}

func TestPercentile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if got := Percentile(x, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(x, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(x, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(x, 25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
	if got := Percentile([]float64{7}, 90); got != 7 {
		t.Fatalf("single element percentile = %v", got)
	}
	if got := Median([]float64{1, 3}); got != 2 {
		t.Fatalf("Median interpolation = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	x := []float64{3, 1, 2}
	Percentile(x, 50)
	if x[0] != 3 || x[1] != 1 || x[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", x)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, p := range []float64{-1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Percentile(%v) did not panic", p)
				}
			}()
			Percentile([]float64{1}, p)
		}()
	}
}

func TestHistogram(t *testing.T) {
	x := []float64{0, 0.1, 0.5, 0.9, 1.0, -5, 5}
	h := Histogram(x, 0, 1, 2)
	// Bins: [0, 0.5) and [0.5, 1]; out-of-range values clamp to end bins.
	if h[0] != 3 || h[1] != 4 {
		t.Fatalf("Histogram = %v", h)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Histogram(bins=0) did not panic")
		}
	}()
	Histogram([]float64{1}, 0, 1, 0)
}

// Property: Welford agrees with the batch Mean/Variance on random data.
func TestWelfordMatchesBatch(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(200)
		x := make([]float64, n)
		r.FillNorm(x)
		var w Welford
		for _, v := range x {
			w.Add(v)
		}
		return w.Count() == n &&
			almostEq(w.Mean(), Mean(x), 1e-9) &&
			almostEq(w.Variance(), Variance(x), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 || w.Count() != 0 {
		t.Fatal("zero-value Welford not neutral")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Fatal("one-sample Welford wrong")
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(50)
		x := make([]float64, n)
		r.FillNorm(x)
		prev := Percentile(x, 0)
		for p := 10.0; p <= 100; p += 10 {
			cur := Percentile(x, p)
			if cur < prev-1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

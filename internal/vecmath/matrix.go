package vecmath

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64. Rows and Cols are fixed at
// construction; Data has length Rows*Cols with element (i, j) at
// Data[i*Cols+j].
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("vecmath: NewMatrix with negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix whose rows are copies of the given slices.
// All rows must share one length.
func MatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		checkLen("MatrixFromRows", len(r), cols)
		copy(m.Row(i), r)
	}
	return m
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes y = M·x where x has length Cols and y has length Rows,
// through the blocked kernel (bit-identical to Dot row by row; see
// kernel.go).
func (m *Matrix) MulVec(x []float64) []float64 {
	checkLen("MulVec", len(x), m.Cols)
	y := make([]float64, m.Rows)
	m.mulVecRange(y, x, 0, m.Rows)
	return y
}

// MulVecT computes y = Mᵀ·x where x has length Rows and y has length Cols.
// It walks rows so memory access stays sequential.
func (m *Matrix) MulVecT(x []float64) []float64 {
	checkLen("MulVecT", len(x), m.Rows)
	y := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		Axpy(x[i], m.Row(i), y)
	}
	return y
}

// Gram returns the Rows×Rows matrix M·Mᵀ. For the learning-based decoder
// this is the n×n normal-equations matrix B·Bᵀ where B stacks the base
// hypervectors as rows; n is the feature count, so the result is small even
// when the hypervector dimension is large.
func (m *Matrix) Gram() *Matrix {
	g := NewMatrix(m.Rows, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j := i; j < m.Rows; j++ {
			v := Dot(ri, m.Row(j))
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
	}
	return g
}

// AddDiagonal adds alpha to every diagonal element in place (ridge
// regularization of a Gram matrix). The matrix must be square.
func (m *Matrix) AddDiagonal(alpha float64) {
	if m.Rows != m.Cols {
		panic("vecmath: AddDiagonal on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += alpha
	}
}

// ErrNotPositiveDefinite reports that a Cholesky factorization failed
// because the matrix is not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("vecmath: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ, ready for repeated solves.
type Cholesky struct {
	n int
	l *Matrix
}

// NewCholesky factors the symmetric positive definite matrix a. Only the
// lower triangle of a is read. It returns ErrNotPositiveDefinite when a
// pivot is not strictly positive.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("vecmath: Cholesky of %dx%d non-square matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			li, lj := l.Row(i), l.Row(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve returns x such that A·x = b for the factored matrix A.
func (c *Cholesky) Solve(b []float64) []float64 {
	checkLen("Cholesky.Solve", len(b), c.n)
	// Forward substitution: L·y = b.
	y := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		sum := b[i]
		li := c.l.Row(i)
		for k := 0; k < i; k++ {
			sum -= li[k] * y[k]
		}
		y[i] = sum / li[i]
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, c.n)
	for i := c.n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < c.n; k++ {
			sum -= c.l.At(k, i) * x[k]
		}
		x[i] = sum / c.l.At(i, i)
	}
	return x
}

// Size returns the dimension of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

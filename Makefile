# Tier-1+ gate for the PRID reproduction. `make check` is what a PR must
# pass: formatting, vet, build, and the full test suite. `make race`
# additionally runs the race detector over the packages with concurrency
# (and everything else), and `make bench` regenerates the throughput
# numbers the perf PRs are judged against.

GO ?= go

.PHONY: build test race vet fmt check bench bench-snapshot

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt vet build test

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot (same artifact as
# `prid experiment quick --bench-out`).
bench-snapshot:
	$(GO) run ./cmd/prid experiment quick --bench-out BENCH_1.json

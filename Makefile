# Tier-1+ gate for the PRID reproduction. `make check` is what a PR must
# pass: formatting (gofmt -s), vet, the pridlint invariant suite, build,
# the full test suite (shuffled), and the five end-to-end smokes
# (serving correctness, chaos resilience, load/SLO, multi-node gateway,
# crash durability).
# `make race` additionally runs the race detector over the packages with
# concurrency (and everything else), `make chaos` hammers the server
# with an aggressive fault schedule, `make soak` runs the minutes-long
# gateway endurance profile (deliberately not part of check), and
# `make bench` regenerates the throughput numbers the perf PRs are
# judged against.

GO ?= go

.PHONY: build test race vet fmt lint lint-report check bench bench-compile bench-snapshot serve-smoke chaos-smoke chaos load-smoke gateway-smoke crash-smoke soak slo-snapshot

build:
	$(GO) build ./...

# -shuffle=on randomizes test order so accidental inter-test coupling
# (shared obs counters, leftover registry state) fails loudly instead of
# silently passing in lexical order.
test:
	$(GO) test -shuffle=on ./...

# Covers the concurrent packages (internal/obs, internal/hdc, the
# internal/serve micro-batching server + reload-race test, the federated
# round, internal/gateway — membership churn under concurrent traffic,
# prober vs. router vs. per-backend atomics — and the dedicated
# concurrency tests in internal/attack — shared Reconstructor across
# goroutines — and internal/vecmath — parallel kernels under contention)
# along with everything else. The experiments package needs more than
# the default 10m under the race detector's slowdown, hence the explicit
# timeout.
race:
	$(GO) test -race -timeout 30m ./...

# Full stock analyzer set; go vet enables all of them by default when no
# -<analyzer> flags are passed, so this stays the complete suite as the
# toolchain grows.
vet:
	$(GO) vet ./...

# -s also demands simplified forms (composite-literal elision, range
# cleanups), not just canonical formatting.
fmt:
	@out="$$(gofmt -s -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -s needed on:"; echo "$$out"; exit 1; \
	fi

# Project invariant suite (internal/lint): the per-function syntactic
# analyzers (determinism, float equality, map-order, goroutine fan-out,
# library logging, dropped errors, atomic writes) plus the
# interprocedural dataflow analyzers (leaksurface taint, poolescape,
# ctxflow). Must exit clean; suppressions require a written
# //pridlint:allow reason.
lint:
	$(GO) run ./cmd/pridlint -timing ./...

# Machine-readable lint reports for CI artifact upload: findings as
# JSON next to a SARIF 2.1.0 document for code-scanning annotation.
# Produces the files even when findings exist (pridlint exits 1).
lint-report:
	$(GO) run ./cmd/pridlint -json ./... > pridlint.json || true
	$(GO) run ./cmd/pridlint -sarif ./... > pridlint.sarif || true

check: fmt vet lint build test bench-compile serve-smoke chaos-smoke load-smoke gateway-smoke crash-smoke

# Benchmark-compile gate: every benchmark must build and survive one
# iteration, so benches cannot rot uncompiled (or silently broken)
# between perf PRs. -benchtime=1x keeps it a compile+smoke, not a
# measurement.
bench-compile:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# End-to-end gate for the serving subsystem: builds the binary, trains
# and saves two quick models, starts `prid serve` on a random port,
# drives predict / similarities / reconstruct / audit-leakage over real
# HTTP against in-process expectations, then requires a clean SIGINT
# drain. A second phase restarts in `--mode binary` and holds the
# Hamming fast path (plus a `prid gateway` in front) to the same bar,
# including the 400 on reconstruct. Fails non-zero on any mismatch.
serve-smoke:
	$(GO) run ./cmd/serve-smoke

# Resilience gate: drives the server through a deterministic fault
# schedule (errors, latency spikes, dropped/hung connections, truncated
# and corrupted payloads, handler panics) with the retrying client and a
# mid-run hot reload, requiring bit-identical predictions, recovered
# panics, a clean drain, and zero goroutine leaks.
chaos-smoke:
	$(GO) run ./cmd/chaos-smoke

# Latency gate: the deterministic open-loop load generator drives the
# spike-shaped plan three times — clean, under the chaos fault schedule,
# and through a three-backend gateway fleet with chaos everywhere — and
# asserts SLOs on each (p99 bound, zero outright failures, shed-rate
# bound) plus the per-backend /gatewayz breakdown on the gateway pass.
# Fixed seed: identical request counts and verdicts on every run. The
# report lands under a temp dir by default; set LOAD_SMOKE_OUT to keep
# it (CI does, to archive it as a build artifact).
LOAD_SMOKE_OUT ?=
load-smoke:
	$(GO) run ./cmd/load-smoke -out "$(LOAD_SMOKE_OUT)"

# Multi-node gate: three chaotic backends behind the consistent-hash
# gateway, with a backend killed and revived mid-traffic. Requires every
# prediction bit-identical to the in-process model, zero dropped
# requests across the churn, /gatewayz evidence of the eject/rejoin
# transitions, a bit-identical quorum majority, and a leak-free drain.
gateway-smoke:
	$(GO) run ./cmd/gateway-smoke

# Durability gate: SIGKILLs a snapshot writer mid-write, bit-flips and
# truncates the newest generations, then requires two real `prid serve
# --store` processes behind the gateway to recover to the last intact
# generation — bit-identical predictions, zero dropped requests through
# a backend kill -9 and restart, corrupt generations reported on
# /debug/vars, and forward-only motion on fleet reload.
crash-smoke:
	$(GO) run ./cmd/crash-smoke

# Endurance profile (NOT part of check; minutes-long by design): the
# gateway fleet under continuous bit-identical traffic with a rotating
# kill/revive churn for SOAK_DURATION, asserting zero goroutine and FD
# growth between steady-state samples at the start and end of the run.
SOAK_DURATION ?= 2m
soak:
	$(GO) run ./cmd/soak -duration $(SOAK_DURATION)

# Refresh the committed SLO trajectory snapshot (SLO_1.json) from a
# load-smoke pass — the latency analogue of bench-snapshot.
slo-snapshot:
	$(GO) run ./cmd/load-smoke -out SLO_1.json

# The same gate under a much nastier schedule and more traffic — for
# soaking changes to the serving or client retry paths.
chaos:
	$(GO) run ./cmd/chaos-smoke \
		-spec "error=0.25,latency=0.5:1ms-25ms,drop=0.08,hang=0.03,truncate=0.08,corrupt=0.08,panic=0.05,audit.panic=1" \
		-requests 300

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot (same artifact as
# `prid experiment quick --bench-out`). Updates only the "current" label
# in BENCH_1.json; the committed "baseline" label (the pre-optimization
# run of PR 4) is preserved for comparison.
bench-snapshot:
	$(GO) run ./cmd/prid experiment quick --bench-out BENCH_1.json --bench-label current

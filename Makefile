# Tier-1+ gate for the PRID reproduction. `make check` is what a PR must
# pass: formatting, vet, build, and the full test suite. `make race`
# additionally runs the race detector over the packages with concurrency
# (and everything else), and `make bench` regenerates the throughput
# numbers the perf PRs are judged against.

GO ?= go

.PHONY: build test race vet fmt check bench bench-snapshot serve-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Covers the concurrent packages (internal/obs, internal/hdc, and the
# internal/serve micro-batching server) along with everything else. The
# experiments package needs more than the default 10m under the race
# detector's slowdown, hence the explicit timeout.
race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt vet build test serve-smoke

# End-to-end gate for the serving subsystem: builds the binary, trains
# and saves two quick models, starts `prid serve` on a random port,
# drives predict / similarities / reconstruct / audit-leakage over real
# HTTP against in-process expectations, then requires a clean SIGINT
# drain. Fails non-zero on any mismatch.
serve-smoke:
	$(GO) run ./cmd/serve-smoke

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot (same artifact as
# `prid experiment quick --bench-out`).
bench-snapshot:
	$(GO) run ./cmd/prid experiment quick --bench-out BENCH_1.json

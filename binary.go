package prid

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"prid/internal/hdc"
	"prid/internal/store"
	"prid/internal/vecmath"
)

// BinaryModel is the bit-packed serving form of a Model: the encoding
// basis held packed (64× smaller, bit-identical encode) and the class
// hypervectors reduced to their sign patterns, classified by XOR +
// popcount Hamming distance. This is the paper's 1-bit quantization
// defense deployed as the inference format — the accuracy/leakage/
// throughput tradeoff the binary serve mode exists to exploit.
//
// A BinaryModel serves predict and similarities but not reconstruction
// or leakage audits: those need the float class hypervectors the packing
// deliberately destroyed (that destruction is the defense).
type BinaryModel struct {
	basis *hdc.PackedBasis
	bin   *hdc.BinaryModel
	pool  sync.Pool // *binScratch, reused across requests and workers
}

// binScratch is one worker's classify scratch: the encode destination,
// the packed query, and the distance vector. Pooled so the batch hot
// path performs zero per-request allocations.
type binScratch struct {
	h     []float64
	q     []uint64
	dists []int
}

func newBinaryModel(basis *hdc.PackedBasis, bin *hdc.BinaryModel) *BinaryModel {
	b := &BinaryModel{basis: basis, bin: bin}
	b.pool.New = func() any {
		return &binScratch{
			h:     make([]float64, bin.Dim()),
			q:     make([]uint64, bin.Words()),
			dists: make([]int, bin.NumClasses()),
		}
	}
	return b
}

// Binarize returns the bit-packed serving form of m. The packed basis
// encodes bit-identically to the float one, so binary and float modes
// disagree only where the sign quantization of the classes does.
func (m *Model) Binarize() *BinaryModel {
	return newBinaryModel(hdc.PackBasis(m.basis), hdc.Binarize(m.model))
}

// Features returns the input dimensionality n.
func (b *BinaryModel) Features() int { return b.basis.Features() }

// Dimension returns the hypervector dimensionality D.
func (b *BinaryModel) Dimension() int { return b.basis.Dim() }

// Classes returns the number of classes k.
func (b *BinaryModel) Classes() int { return b.bin.NumClasses() }

// MemoryBytes returns the packed footprint of basis plus model.
func (b *BinaryModel) MemoryBytes() int { return b.basis.MemoryBytes() + b.bin.MemoryBytes() }

// CompressionRatio returns the float-model-to-packed size ratio of the
// class hypervectors (≈ 64).
func (b *BinaryModel) CompressionRatio() float64 { return b.bin.CompressionRatio() }

func (b *BinaryModel) validateRows(x [][]float64) error {
	n := b.Features()
	for i, row := range x {
		if len(row) != n {
			return fmt.Errorf("prid: sample %d has %d features, model expects %d", i, len(row), n)
		}
		if err := checkFinite(row, fmt.Sprintf("sample[%d]", i)); err != nil {
			return err
		}
	}
	return nil
}

// classifyPooled encodes and classifies one row using pooled scratch.
func (b *BinaryModel) classifyPooled(row []float64) int {
	s := b.pool.Get().(*binScratch)
	b.basis.EncodeInto(s.h, row)
	pred := b.bin.ClassifyInto(s.dists, s.q, s.h)
	b.pool.Put(s)
	return pred
}

// Predict returns the Hamming-nearest class for one feature vector.
func (b *BinaryModel) Predict(x []float64) (int, error) {
	if len(x) != b.Features() {
		return 0, fmt.Errorf("prid: sample has %d features, model expects %d", len(x), b.Features())
	}
	if err := checkFinite(x, "sample"); err != nil {
		return 0, err
	}
	return b.classifyPooled(x), nil
}

// PredictBatch classifies every row of x, fanning samples out across
// cores; each worker reuses pooled scratch, so beyond the result slice
// the hot path is allocation-free per request. Results are element-wise
// identical to calling Predict on each row.
func (b *BinaryModel) PredictBatch(x [][]float64) ([]int, error) {
	if len(x) == 0 {
		return nil, errors.New("prid: empty batch")
	}
	if err := b.validateRows(x); err != nil {
		return nil, err
	}
	out := make([]int, len(x))
	vecmath.ParallelRows(len(x), 0, func(lo, hi int) {
		s := b.pool.Get().(*binScratch)
		for i := lo; i < hi; i++ {
			b.basis.EncodeInto(s.h, x[i])
			out[i] = b.bin.ClassifyInto(s.dists, s.q, s.h)
		}
		b.pool.Put(s)
	})
	return out, nil
}

// Similarities returns the Hamming similarity (the cosine of the two
// sign patterns, 1 − 2·hd/D) of x's encoding to every class.
func (b *BinaryModel) Similarities(x []float64) ([]float64, error) {
	if len(x) != b.Features() {
		return nil, fmt.Errorf("prid: sample has %d features, model expects %d", len(x), b.Features())
	}
	if err := checkFinite(x, "sample"); err != nil {
		return nil, err
	}
	s := b.pool.Get().(*binScratch)
	b.basis.EncodeInto(s.h, x)
	b.bin.ClassifyInto(s.dists, s.q, s.h)
	sims := make([]float64, len(s.dists))
	for l, hd := range s.dists {
		sims[l] = b.bin.HammingSimilarity(hd)
	}
	b.pool.Put(s)
	return sims, nil
}

// Accuracy scores the binary model on a labeled set.
func (b *BinaryModel) Accuracy(x [][]float64, y []int) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("prid: %d samples but %d labels", len(x), len(y))
	}
	if len(x) == 0 {
		return 0, errors.New("prid: empty evaluation set")
	}
	preds, err := b.PredictBatch(x)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, p := range preds {
		if p == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x)), nil
}

// Save serializes the packed model — basis section plus "PRIDBIN1" model
// section — in the repository's versioned binary format.
func (b *BinaryModel) Save(w io.Writer) error {
	if err := hdc.WritePackedBasis(w, b.basis); err != nil {
		return fmt.Errorf("prid: saving basis: %w", err)
	}
	if err := hdc.WriteBinaryModel(w, b.bin); err != nil {
		return fmt.Errorf("prid: saving binary model: %w", err)
	}
	return nil
}

// SaveFile writes the packed model to path with the same atomic
// crash-consistency as Model.SaveFile.
func (b *BinaryModel) SaveFile(path string) error {
	if _, _, err := store.AtomicWrite(path, 0o644, b.Save); err != nil {
		return fmt.Errorf("prid: saving binary model: %w", err)
	}
	return nil
}

// SaveGeneration writes the packed model as a new checksummed generation
// of name in st, stamping its shape into the manifest like the float
// form does.
func (b *BinaryModel) SaveGeneration(st *store.Store, name string, info store.Info) (store.Meta, error) {
	info.Features = b.Features()
	info.Dimension = b.Dimension()
	info.Classes = b.Classes()
	return st.Save(name, info, b.Save)
}

// LoadBinary reads a model stream into serving-ready binary form. It
// accepts both artifact layouts behind the basis section: a persisted
// binary model ("PRIDBIN1") loads directly, and a float model
// ("PRIDMDL1") is binarized on load — so any existing float artifact can
// be served in binary mode without retraining. Hardening matches Load.
func LoadBinary(r io.Reader) (*BinaryModel, error) {
	basis, err := hdc.ReadPackedBasis(r)
	if err != nil {
		return nil, fmt.Errorf("prid: loading basis: %w", err)
	}
	fm, bm, err := hdc.ReadAnyModel(r)
	if err != nil {
		return nil, fmt.Errorf("prid: loading model: %w", err)
	}
	if fm != nil {
		bm = hdc.Binarize(fm)
	}
	if bm.Dim() != basis.Dim() {
		return nil, fmt.Errorf("prid: basis dimension %d does not match model dimension %d", basis.Dim(), bm.Dim())
	}
	return newBinaryModel(basis, bm), nil
}

// LoadBinaryFile reads a model file (float or persisted-binary) into
// binary serving form.
func LoadBinaryFile(path string) (*BinaryModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("prid: loading binary model: %w", err)
	}
	defer f.Close() //pridlint:allow errdrop read-path close: LoadBinary already surfaced any read error
	return LoadBinary(f)
}

// LoadNewestBinary loads the newest intact generation of name from st in
// binary serving form, with the same corrupt-generation fallback and
// manifest shape cross-check as LoadNewest.
func LoadNewestBinary(st *store.Store, name string) (*BinaryModel, store.Meta, error) {
	var model *BinaryModel
	meta, err := st.OpenNewest(name, func(r io.Reader, meta store.Meta) error {
		loaded, lerr := LoadBinary(r)
		if lerr != nil {
			return lerr
		}
		if loaded.Features() != meta.Features || loaded.Dimension() != meta.Dimension || loaded.Classes() != meta.Classes {
			return fmt.Errorf("prid: loaded shape %d/%d/%d does not match manifest %d/%d/%d",
				loaded.Features(), loaded.Dimension(), loaded.Classes(),
				meta.Features, meta.Dimension, meta.Classes)
		}
		model = loaded
		return nil
	})
	if err != nil {
		return nil, store.Meta{}, err
	}
	return model, meta, nil
}

package prid

import (
	"fmt"

	"prid/internal/attack"
	"prid/internal/metrics"
	"prid/internal/obs"
)

// Attacker mounts the PRID model-inversion attack. Constructing one
// requires only what every participant in a distributed HDC deployment
// already holds: the shared Model (class hypervectors + encoding basis).
type Attacker struct {
	model *Model
	rec   *attack.Reconstructor
	iters int
}

// AttackOption configures NewAttacker.
type AttackOption func(*attackOptions)

type attackOptions struct {
	iterations int
}

// WithAttackIterations sets the reconstruction refinement depth
// (default 4).
func WithAttackIterations(n int) AttackOption {
	return func(o *attackOptions) { o.iterations = n }
}

// NewAttacker prepares an attack against the shared model, decoding its
// class hypervectors once with the learning-based decoder.
func NewAttacker(m *Model, opts ...AttackOption) (*Attacker, error) {
	o := attackOptions{iterations: 4}
	for _, opt := range opts {
		opt(&o)
	}
	if o.iterations < 1 {
		return nil, fmt.Errorf("prid: attack iterations %d < 1", o.iterations)
	}
	return &Attacker{
		model: m,
		rec:   attack.NewReconstructor(m.basis, m.model, m.dec),
		iters: o.iterations,
	}, nil
}

// Membership reports the class the query matches and the similarity
// δ_max — the paper's train-set availability check. High similarity means
// train points with high overlap with the query likely exist.
func (a *Attacker) Membership(query []float64) (class int, similarity float64, err error) {
	if len(query) != a.model.Features() {
		return 0, 0, fmt.Errorf("prid: query has %d features, model expects %d", len(query), a.model.Features())
	}
	mem := attack.CheckMembership(a.model.model, a.model.basis, query)
	return mem.Class, mem.Similarity, nil
}

// Reconstruction is a train-data estimate extracted from the model.
type Reconstruction struct {
	// Class is the class whose training data the estimate describes.
	Class int
	// Data is the reconstructed feature vector.
	Data []float64
	// Similarity is the final cosine similarity of the reconstruction's
	// encoding to the matched class hypervector.
	Similarity float64
}

// Reconstruct runs the paper's combined (feature + dimension replacement)
// attack against the model for one query.
func (a *Attacker) Reconstruct(query []float64) (Reconstruction, error) {
	if len(query) != a.model.Features() {
		return Reconstruction{}, fmt.Errorf("prid: query has %d features, model expects %d", len(query), a.model.Features())
	}
	cfg := attack.DefaultConfig()
	cfg.Iterations = a.iters
	res := a.rec.Combined(query, cfg)
	return Reconstruction{Class: res.Class, Data: res.Recon, Similarity: res.Similarity}, nil
}

// DecodeClass returns the attacker's decoded estimate of class l's mean
// training sample — the "general shape" leak (e.g. the shape of the zero
// digit) that decoding a class hypervector reveals.
func (a *Attacker) DecodeClass(l int) ([]float64, error) {
	if l < 0 || l >= a.model.Classes() {
		return nil, fmt.Errorf("prid: class %d out of range [0,%d)", l, a.model.Classes())
	}
	return a.rec.ClassFeatures(l), nil
}

// MembershipAUC evaluates the model as a membership oracle: it scores the
// member samples (training data) and non-member samples with δ_max and
// returns the area under the resulting ROC curve. 0.5 means the model
// discloses nothing about membership; 1.0 means perfect disclosure.
func (a *Attacker) MembershipAUC(members, nonMembers [][]float64) (float64, error) {
	if len(members) == 0 || len(nonMembers) == 0 {
		return 0, fmt.Errorf("prid: MembershipAUC needs both member and non-member samples")
	}
	for _, set := range [][][]float64{members, nonMembers} {
		for i, s := range set {
			if len(s) != a.model.Features() {
				return 0, fmt.Errorf("prid: sample %d has %d features, model expects %d",
					i, len(s), a.model.Features())
			}
		}
	}
	return attack.MembershipAUC(a.model.model, a.model.basis, members, nonMembers), nil
}

// AuditLeakage is the defender-side self-audit: before sharing a model,
// measure how much an attacker holding it would extract about the training
// set, as the mean leakage Δ of combined-attack reconstructions over the
// given probe queries (held-out samples work well). It is the one-call
// loop behind the repository's defense evaluations.
func (m *Model) AuditLeakage(trainX [][]float64, queries [][]float64) (float64, error) {
	if len(trainX) == 0 || len(queries) == 0 {
		return 0, fmt.Errorf("prid: AuditLeakage needs train data and probe queries")
	}
	span := obs.StartSpan("attack")
	span.AddSamples(len(queries))
	defer span.End()
	a, err := NewAttacker(m)
	if err != nil {
		return 0, err
	}
	var sum float64
	for i, q := range queries {
		recon, err := a.Reconstruct(q)
		if err != nil {
			return 0, fmt.Errorf("prid: auditing query %d: %w", i, err)
		}
		s, err := MeasureLeakage(trainX, q, recon.Data)
		if err != nil {
			return 0, fmt.Errorf("prid: auditing query %d: %w", i, err)
		}
		sum += s
	}
	return sum / float64(len(queries)), nil
}

// MeasureLeakage scores a reconstruction with the paper's normalized
// information-leakage metric Δ ∈ [0, 1]: 0 means the reconstruction
// reveals nothing beyond an uninformative constant probe, 1 means it
// matches the best extraction possible (producing actual train samples).
func MeasureLeakage(train [][]float64, query, recon []float64) (float64, error) {
	if len(train) == 0 {
		return 0, fmt.Errorf("prid: empty train set")
	}
	if len(query) != len(recon) || len(query) != len(train[0]) {
		return 0, fmt.Errorf("prid: length mismatch: query %d, recon %d, train %d",
			len(query), len(recon), len(train[0]))
	}
	return metrics.MeasureLeakage(train, query, recon, metrics.TopKNearest).Score(), nil
}

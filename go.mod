module prid

go 1.22

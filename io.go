package prid

import (
	"fmt"
	"io"
	"os"

	"prid/internal/decode"
	"prid/internal/hdc"
)

// Save serializes the model — basis plus class hypervectors, i.e. exactly
// the artifacts a federated HDC participant transmits — to w in the
// repository's versioned binary format.
func (m *Model) Save(w io.Writer) error {
	if err := hdc.WriteBasis(w, m.basis); err != nil {
		return fmt.Errorf("prid: saving basis: %w", err)
	}
	if err := hdc.WriteModel(w, m.model); err != nil {
		return fmt.Errorf("prid: saving model: %w", err)
	}
	return nil
}

// SaveFile writes the model to path (see Save).
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prid: saving model: %w", err)
	}
	if err := m.Save(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("prid: saving model: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save. The learning-based
// decoder is refactored on load (its Cholesky factorization is derived
// state, not serialized).
//
// Load is safe on untrusted input — the threat model of a serving layer
// hot-loading model files: declared feature/class/dimension counts are
// capped, allocations grow only as bytes actually arrive, and corrupt,
// truncated, or non-finite streams yield descriptive errors rather than
// huge allocations or panics (see FuzzLoad).
func Load(r io.Reader) (*Model, error) {
	basis, err := hdc.ReadBasis(r)
	if err != nil {
		return nil, fmt.Errorf("prid: loading basis: %w", err)
	}
	model, err := hdc.ReadModel(r)
	if err != nil {
		return nil, fmt.Errorf("prid: loading model: %w", err)
	}
	if model.Dim() != basis.Dim() {
		return nil, fmt.Errorf("prid: basis dimension %d does not match model dimension %d", basis.Dim(), model.Dim())
	}
	// Reduced-dimension systems (DefendReduceDimensions) can have D ≤ n,
	// where the Gram matrix is singular; attach a ridge-regularized decoder
	// in that regime.
	ridge := 0.0
	if basis.Dim() <= basis.Features() {
		ridge = 0.01 * float64(basis.Dim())
	}
	ls, err := decode.NewLeastSquares(basis, ridge)
	if err != nil {
		return nil, fmt.Errorf("prid: preparing decoder: %w", err)
	}
	return &Model{basis: basis, model: model, dec: ls}, nil
}

// LoadFile reads a model file written by SaveFile (or `prid train --save`).
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("prid: loading model: %w", err)
	}
	defer f.Close() //pridlint:allow errdrop read-path close: Load already surfaced any read error
	return Load(f)
}

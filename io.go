package prid

import (
	"fmt"
	"io"
	"os"

	"prid/internal/decode"
	"prid/internal/hdc"
	"prid/internal/store"
)

// Save serializes the model — basis plus class hypervectors, i.e. exactly
// the artifacts a federated HDC participant transmits — to w in the
// repository's versioned binary format.
func (m *Model) Save(w io.Writer) error {
	if err := hdc.WriteBasis(w, m.basis); err != nil {
		return fmt.Errorf("prid: saving basis: %w", err)
	}
	if err := hdc.WriteModel(w, m.model); err != nil {
		return fmt.Errorf("prid: saving model: %w", err)
	}
	return nil
}

// SaveFile writes the model to path (see Save) with full crash
// consistency: the bytes land in a same-directory temp file that is
// fsynced and renamed over path, so a kill mid-save can never leave a
// torn model file under the final name and a completed save survives
// power loss.
func (m *Model) SaveFile(path string) error {
	if _, _, err := store.AtomicWrite(path, 0o644, m.Save); err != nil {
		return fmt.Errorf("prid: saving model: %w", err)
	}
	return nil
}

// SaveGeneration writes the model as a new checksummed generation of
// name in st. The model's shape is stamped into the manifest entry
// automatically; callers that ran a leakage audit pass its Δ through
// info so the generation's privacy provenance travels with it.
func (m *Model) SaveGeneration(st *store.Store, name string, info store.Info) (store.Meta, error) {
	info.Features = m.Features()
	info.Dimension = m.Dimension()
	info.Classes = m.Classes()
	return st.Save(name, info, m.Save)
}

// LoadNewest loads the newest intact generation of name from st,
// falling back past corrupt or truncated generations (see
// store.OpenNewest). Beyond the store's checksum, the loaded model's
// shape is cross-checked against what the manifest promised — a payload
// that checksums correctly but deserializes into a different model is
// treated as corrupt and skipped too.
func LoadNewest(st *store.Store, name string) (*Model, store.Meta, error) {
	var model *Model
	meta, err := st.OpenNewest(name, func(r io.Reader, meta store.Meta) error {
		loaded, lerr := Load(r)
		if lerr != nil {
			return lerr
		}
		if loaded.Features() != meta.Features || loaded.Dimension() != meta.Dimension || loaded.Classes() != meta.Classes {
			return fmt.Errorf("prid: loaded shape %d/%d/%d does not match manifest %d/%d/%d",
				loaded.Features(), loaded.Dimension(), loaded.Classes(),
				meta.Features, meta.Dimension, meta.Classes)
		}
		model = loaded
		return nil
	})
	if err != nil {
		return nil, store.Meta{}, err
	}
	return model, meta, nil
}

// Load reads a model previously written by Save. The learning-based
// decoder is refactored on load (its Cholesky factorization is derived
// state, not serialized).
//
// Load is safe on untrusted input — the threat model of a serving layer
// hot-loading model files: declared feature/class/dimension counts are
// capped, allocations grow only as bytes actually arrive, and corrupt,
// truncated, or non-finite streams yield descriptive errors rather than
// huge allocations or panics (see FuzzLoad).
func Load(r io.Reader) (*Model, error) {
	basis, err := hdc.ReadBasis(r)
	if err != nil {
		return nil, fmt.Errorf("prid: loading basis: %w", err)
	}
	model, err := hdc.ReadModel(r)
	if err != nil {
		return nil, fmt.Errorf("prid: loading model: %w", err)
	}
	if model.Dim() != basis.Dim() {
		return nil, fmt.Errorf("prid: basis dimension %d does not match model dimension %d", basis.Dim(), model.Dim())
	}
	// Reduced-dimension systems (DefendReduceDimensions) can have D ≤ n,
	// where the Gram matrix is singular; attach a ridge-regularized decoder
	// in that regime.
	ridge := 0.0
	if basis.Dim() <= basis.Features() {
		ridge = 0.01 * float64(basis.Dim())
	}
	ls, err := decode.NewLeastSquares(basis, ridge)
	if err != nil {
		return nil, fmt.Errorf("prid: preparing decoder: %w", err)
	}
	return &Model{basis: basis, model: model, dec: ls}, nil
}

// LoadFile reads a model file written by SaveFile (or `prid train --save`).
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("prid: loading model: %w", err)
	}
	defer f.Close() //pridlint:allow errdrop read-path close: Load already surfaced any read error
	return Load(f)
}
